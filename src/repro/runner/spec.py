"""Declarative experiment specifications: sweeps as TOML/JSON documents.

An :class:`ExperimentSpec` declares an entire sweep as data — base
configuration, override axes, workloads and sizing — so a study is a
file on disk instead of a Python function::

    spec_version = 1
    name = "rob-sweep"
    accesses = 4000
    workloads = ["spec06.stencil", "ligra.bfs"]

    [base]                          # dotted overrides on SystemConfig()
    prefetcher = "pythia"

    [[axes]]
    name = "rob"
    [[axes.points]]
    label = "rob256"
    [axes.points.set]
    "core.rob_size" = 256
    [[axes.points]]
    label = "rob512"
    [axes.points.set]
    "core.rob_size" = 512

Axes are cross-producted: every combination of one point per axis
becomes one configuration (labels joined with ``/``, later axes'
overrides winning on conflict), and each configuration runs every
workload — exactly the ``run_matrix`` shape, but serializable, diffable
and hashable into the result cache.  ``repro sweep --spec file.toml``
runs a spec from the shell; :meth:`ExperimentSpec.sweep` feeds the
standard :class:`~repro.runner.runner.JobRunner`.

Workload selection is either an explicit ``workloads`` list (catalogue
names or trace file paths) or ``categories``/``per_category`` suite
selection — the same logic the experiment runners use.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.config.io import load_document
from repro.config.overrides import apply_overrides
from repro.config.schema import ConfigError
from repro.runner.job import SimJob, SweepSpec
from repro.sim.config import SystemConfig

#: Version of the experiment-spec document layout; bump on breaking
#: changes so old spec files fail loudly instead of misparsing.
SPEC_VERSION = 1

#: Keys accepted at the top level of a spec document.
_SPEC_KEYS = frozenset({
    "spec_version", "name", "base", "axes", "workloads",
    "categories", "per_category", "accesses",
})


@dataclass(frozen=True)
class AxisPoint:
    """One labelled point of a sweep axis: a set of dotted overrides."""

    label: str
    set: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Axis:
    """A named list of points, cross-producted with the other axes."""

    name: str
    points: Sequence[AxisPoint]


@dataclass
class ExperimentSpec:
    """A sweep declared as data; expands to a :class:`SimJob` matrix."""

    name: str
    base: SystemConfig = field(default_factory=SystemConfig)
    axes: Sequence[Axis] = field(default_factory=list)
    workloads: Sequence[str] = field(default_factory=list)
    accesses: int = 10000

    # ------------------------------------------------------------------ #
    # Construction from documents
    # ------------------------------------------------------------------ #

    @classmethod
    def from_file(cls, path, fmt: Optional[str] = None) -> "ExperimentSpec":
        """Load a spec from a TOML/JSON file (strict; see module doc)."""
        return cls.from_dict(load_document(path, fmt), where=str(path))

    @classmethod
    def from_dict(cls, document: Mapping[str, Any],
                  where: str = "spec") -> "ExperimentSpec":
        """Build a spec from its document form, validating every key."""
        if not isinstance(document, Mapping):
            raise ConfigError(f"{where}: spec must be a table/object")
        unknown = sorted(set(document) - _SPEC_KEYS)
        if unknown:
            raise ConfigError(
                f"{where}: unknown spec key(s) {unknown}; "
                f"accepted: {sorted(_SPEC_KEYS)}")
        version = document.get("spec_version")
        if version is None:
            raise ConfigError(
                f"{where}: missing spec_version (current is {SPEC_VERSION})")
        if version != SPEC_VERSION:
            raise ConfigError(
                f"{where}: unsupported spec_version {version!r} "
                f"(this build reads {SPEC_VERSION})")
        name = document.get("name")
        if not isinstance(name, str) or not name:
            raise ConfigError(f"{where}: spec needs a non-empty string 'name'")

        base_overrides = document.get("base", {})
        if not isinstance(base_overrides, Mapping):
            raise ConfigError(f"{where}: [base] must be a table of "
                              f"dotted-path overrides")
        try:
            base = apply_overrides(SystemConfig(), base_overrides)
        except KeyError as exc:
            raise ConfigError(f"{where}: [base]: {exc.args[0]}") from None

        axes = [_parse_axis(axis, index, where)
                for index, axis in enumerate(_expect_list(
                    document.get("axes", []), f"{where}: axes"))]

        workloads = _parse_workloads(document, where)
        accesses = document.get("accesses", 10000)
        if not isinstance(accesses, int) or accesses <= 0:
            raise ConfigError(f"{where}: accesses must be a positive int")
        return cls(name=name, base=base, axes=axes,
                   workloads=workloads, accesses=accesses)

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #

    def configs(self) -> Dict[str, SystemConfig]:
        """The cross-product of axis points: label -> configuration.

        With no axes, the base config runs alone under the spec's name.
        Later axes' overrides win when two axes touch the same path.
        """
        if not self.axes:
            return {self.base.label or self.name: self.base}
        out: Dict[str, SystemConfig] = {}
        for combo in product(*(axis.points for axis in self.axes)):
            label = "/".join(point.label for point in combo)
            merged: Dict[str, Any] = {}
            for point in combo:
                merged.update(point.set)
            try:
                config = apply_overrides(self.base, merged)
            except KeyError as exc:
                raise ConfigError(
                    f"spec {self.name!r}, point {label!r}: "
                    f"{exc.args[0]}") from None
            if label in out:
                raise ConfigError(
                    f"spec {self.name!r}: duplicate point label {label!r}")
            out[label] = replace(config, label=label)
        return out

    def jobs(self) -> List[SimJob]:
        """One single-core job per (configuration x workload)."""
        names = self.workload_names()
        if not names:
            raise ConfigError(
                f"spec {self.name!r} selects no workloads; give "
                f"'workloads' or 'categories'/'per_category'")
        return [SimJob(config=config, workload=workload,
                       num_accesses=self.accesses)
                for config in self.configs().values()
                for workload in names]

    def workload_names(self) -> List[str]:
        return list(self.workloads)

    def sweep(self) -> SweepSpec:
        """This spec as a runnable :class:`SweepSpec` (no reducer)."""
        return SweepSpec(name=self.name, jobs=self.jobs())

    def missing_jobs(self, cache) -> List[SimJob]:
        """The subset of this spec's jobs with no entry in ``cache``.

        The crash-resume preview: after an interrupted run, these are
        the jobs a re-run will actually execute (everything else is
        served from the checkpointed entries).  Existence-only — a
        corrupt entry still counts as present here and is quarantined
        and re-run when the runner reads it.
        """
        return [job for job in self.jobs() if not cache.has(job)]

    def delta(self, since: "ExperimentSpec") -> Any:
        """Diff this spec's matrix against ``since``'s by content hash.

        Returns a :class:`~repro.runner.delta.SpecDelta` whose
        ``changed`` jobs are exactly what ``repro sweep --spec A
        --since-spec B`` executes.  Lazy import: :mod:`~repro.runner.
        delta` imports this module for its type hints.
        """
        from repro.runner.delta import diff_specs
        return diff_specs(self, since)

    def group(self, results: Sequence[Any]) -> Dict[str, List[Any]]:
        """Re-shape flat job results into ``{label: [per-workload]}``.

        The inverse of :meth:`jobs`'s iteration order, matching the
        shape :func:`repro.experiments.common.run_matrix` returns.
        """
        names = self.workload_names()
        labels = list(self.configs())
        expected = len(labels) * len(names)
        if len(results) != expected:
            raise ValueError(
                f"spec {self.name!r} expands to {expected} jobs, "
                f"got {len(results)} results")
        per = len(names)
        return {label: list(results[i * per:(i + 1) * per])
                for i, label in enumerate(labels)}


def _expect_list(value: Any, where: str) -> List[Any]:
    if not isinstance(value, list):
        raise ConfigError(f"{where} must be an array")
    return value


def _parse_axis(data: Any, index: int, where: str) -> Axis:
    if not isinstance(data, Mapping):
        raise ConfigError(f"{where}: axes[{index}] must be a table")
    unknown = sorted(set(data) - {"name", "points"})
    if unknown:
        raise ConfigError(
            f"{where}: axes[{index}]: unknown key(s) {unknown}; "
            f"accepted: ['name', 'points']")
    name = data.get("name", f"axis{index}")
    if not isinstance(name, str) or not name:
        raise ConfigError(f"{where}: axes[{index}].name must be a string")
    points_data = _expect_list(data.get("points", []),
                               f"{where}: axes[{index}].points")
    if not points_data:
        raise ConfigError(f"{where}: axis {name!r} has no points")
    points = []
    seen = set()
    for p_index, point in enumerate(points_data):
        if not isinstance(point, Mapping):
            raise ConfigError(
                f"{where}: axes[{index}].points[{p_index}] must be a table")
        unknown = sorted(set(point) - {"label", "set"})
        if unknown:
            raise ConfigError(
                f"{where}: axis {name!r} point {p_index}: unknown key(s) "
                f"{unknown}; accepted: ['label', 'set']")
        label = point.get("label")
        if not isinstance(label, str) or not label:
            raise ConfigError(
                f"{where}: axis {name!r} point {p_index} needs a string label")
        if label in seen:
            raise ConfigError(
                f"{where}: axis {name!r} repeats label {label!r}")
        seen.add(label)
        overrides = point.get("set", {})
        if not isinstance(overrides, Mapping):
            raise ConfigError(
                f"{where}: axis {name!r} point {label!r}: 'set' must be a "
                f"table of dotted-path overrides")
        points.append(AxisPoint(label=label, set=dict(overrides)))
    return Axis(name=name, points=points)


def _parse_workloads(document: Mapping[str, Any], where: str) -> List[str]:
    explicit = document.get("workloads")
    categories = document.get("categories")
    per_category = document.get("per_category")
    if explicit is not None:
        if categories is not None or per_category is not None:
            raise ConfigError(
                f"{where}: give either an explicit 'workloads' list or "
                f"'categories'/'per_category' suite selection, not both")
        names = _expect_list(explicit, f"{where}: workloads")
        if not all(isinstance(n, str) for n in names) or not names:
            raise ConfigError(
                f"{where}: workloads must be a non-empty array of names "
                f"or trace file paths")
        return list(names)
    from repro.workloads.suite import select_workload_names
    if per_category is not None and (
            not isinstance(per_category, int) or per_category <= 0):
        raise ConfigError(f"{where}: per_category must be a positive int")
    if categories is not None:
        categories = _expect_list(categories, f"{where}: categories")
    return select_workload_names(categories=categories,
                                 per_category=per_category)
