"""Decorator-driven component registries.

A :class:`Registry` maps lower-cased names to factories (classes or
builder functions).  Components self-register at import time::

    from repro.offchip.registry import register_predictor

    @register_predictor("popet")
    class POPET(OffChipPredictor):
        ...

which keeps construction serialization-safe — a worker process can
rebuild any component from its registered name plus keyword options —
and makes new predictors/prefetchers pluggable without touching the
factory modules.  Duplicate names are rejected loudly so two components
can never silently shadow each other.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, Iterator, List, TypeVar

T = TypeVar("T")
F = TypeVar("F", bound=Callable[..., Any])


class UnknownComponentError(KeyError):
    """Lookup of a name no component registered under.

    A ``KeyError`` whose message lists the names that *are* registered,
    so a configuration typo tells the user what to type instead.  The
    CLI surfaces the message directly (no traceback).
    """

    def __init__(self, kind: str, name: str, available: List[str]) -> None:
        super().__init__(
            f"unknown {kind} {name!r}; available: {', '.join(available) or '(none)'}")
        self.kind = kind
        self.name = name
        self.available = available

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument; show the message plain.
        return self.args[0]

    def __reduce__(self):
        # Rebuild from the constructor arguments, not args (the message
        # tuple), so the exception survives the pickle round-trip from a
        # process-pool worker back to the parent.
        return (type(self), (self.kind, self.name, self.available))


class Registry(Generic[T]):
    """A name -> factory mapping with decorator-based registration."""

    def __init__(self, kind: str) -> None:
        #: Human-readable component kind, used in error messages.
        self.kind = kind
        self._factories: Dict[str, Callable[..., T]] = {}

    def register(self, name: str) -> Callable[[F], F]:
        """Return a decorator registering its target under ``name``.

        The decorated object (a class or a zero-or-keyword-argument
        builder function) is returned unchanged.  Registering a name
        twice raises ``ValueError``.
        """
        key = name.lower()

        def decorator(factory: F) -> F:
            if key in self._factories:
                raise ValueError(
                    f"duplicate {self.kind} name {name!r} "
                    f"(already registered as {self._factories[key]!r})")
            self._factories[key] = factory
            return factory

        return decorator

    def create(self, name: str, **options: Any) -> T:
        """Instantiate the component registered under ``name``.

        Unknown names raise :class:`UnknownComponentError` (a
        ``KeyError``) listing every registered name.
        """
        try:
            factory = self._factories[name.lower()]
        except KeyError:
            raise UnknownComponentError(self.kind, name, self.names()) from None
        return factory(**options)

    def names(self) -> List[str]:
        """All registered names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)
