"""The stable public API facade.

``repro.api`` is the one import surface user code needs: configuration
types and their serialization, dotted-path overrides, experiment specs,
the two high-level entry points :func:`run` and :func:`sweep`, and the
component registries.  Everything here is re-exported from the
subsystem modules, so the facade adds no behaviour — it pins the names
that are stable across releases::

    from repro import api

    cfg = api.SystemConfig.from_file("system.toml")
    cfg = api.apply_overrides(cfg, {"core.rob_size": 256})
    result = api.run(cfg, workload="ligra.pagerank", accesses=20000)

    spec = api.ExperimentSpec.from_file("examples/specs/rob_sweep.toml")
    table = api.sweep(spec, parallel=True)   # {label: [per-workload]}

The older per-module imports (``repro.sim.config``,
``repro.experiments`` …) keep working — they are the implementation
this facade fronts — but new code and external scripts should prefer
``repro.api`` so internal reorganisations never break them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

# Configuration types
from repro.config import (
    CONFIG_SCHEMA_VERSION,
    ConfigError,
    apply_overrides,
    config_field_paths,
    load_config,
    parse_override,
    parse_override_value,
    save_config,
)
from repro.core.hermes import HermesConfig
from repro.cpu.core import CoreConfig
from repro.dram.config import DRAMConfig
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.offchip.factory import available_predictors, make_predictor
from repro.prefetchers.factory import available_prefetchers, make_prefetcher
from repro.runner import (
    ExperimentSpec,
    FaultPlan,
    JobOutcome,
    JobRunner,
    PredictorSpec,
    ProcessPoolBackend,
    ResultCache,
    RetryPolicy,
    SerialBackend,
    SimJob,
    SpecDelta,
    SweepError,
    SweepReport,
    SweepSpec,
    diff_specs,
    make_backend,
)
from repro.runner.distributed import (
    DistributedBackend,
    ShardedResultCache,
    WorkerLoop,
    open_result_cache,
)
from repro.report import (
    REPORT_SCHEMA_VERSION,
    FigureResult,
    figure_ids,
    get_figure,
)
from repro.service import (
    LoadDriver,
    ServiceClient,
    ServiceDaemon,
    ServiceError,
    SimService,
)
from repro.sim.config import SystemConfig
from repro.sim.results import SimulationResult
from repro.sim.simulator import simulate_stream, simulate_trace
from repro.workloads.suite import make_trace, select_workload_names

__all__ = [
    # configuration
    "SystemConfig", "CoreConfig", "HierarchyConfig", "CacheConfig",
    "DRAMConfig", "HermesConfig",
    "CONFIG_SCHEMA_VERSION", "ConfigError",
    "load_config", "save_config",
    "apply_overrides", "parse_override", "parse_override_value",
    "config_field_paths",
    # specs and jobs
    "ExperimentSpec", "SimJob", "SweepSpec", "PredictorSpec",
    "JobRunner", "SerialBackend", "ProcessPoolBackend", "ResultCache",
    "make_backend",
    # distributed sweeps
    "DistributedBackend", "ShardedResultCache", "WorkerLoop",
    "open_result_cache",
    # delta sweeps
    "SpecDelta", "diff_specs",
    # resilience
    "RetryPolicy", "JobOutcome", "SweepReport", "SweepError", "FaultPlan",
    "sweep_report",
    # registries
    "available_prefetchers", "available_predictors",
    "make_prefetcher", "make_predictor",
    # workloads
    "make_trace", "select_workload_names",
    # execution
    "run", "sweep",
    "SimulationResult", "simulate_trace", "simulate_stream",
    # reporting
    "REPORT_SCHEMA_VERSION", "FigureResult", "figure_ids", "get_figure",
    "report",
    # simulation as a service
    "SimService", "ServiceDaemon", "ServiceClient", "ServiceError",
    "LoadDriver", "serve",
]


def run(config: Optional[SystemConfig] = None, *,
        workload: Optional[str] = None,
        accesses: int = 20000,
        overrides: Optional[Mapping[str, Any]] = None) -> SimulationResult:
    """Run one simulation and return its :class:`SimulationResult`.

    ``config`` defaults to a fresh :class:`SystemConfig`; ``overrides``
    are dotted-path overrides applied on top.  ``workload`` is a
    catalogue name or a trace file path (both resolve through
    :func:`repro.workloads.suite.make_trace`).
    """
    if workload is None:
        raise ValueError("run() needs a workload name or trace file path")
    config = config if config is not None else SystemConfig()
    if overrides:
        config = apply_overrides(config, overrides)
    return simulate_trace(config, make_trace(workload, accesses))


def _make_runner(parallel: bool, max_workers: Optional[int],
                 cache_dir: Optional[Union[str, Path]],
                 retries: int, retry_delay: float,
                 timeout: Optional[float], on_error: str) -> JobRunner:
    """The runner shared by :func:`sweep` and :func:`sweep_report`."""
    backend = (ProcessPoolBackend(max_workers=max_workers) if parallel
               else SerialBackend())
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    policy = RetryPolicy(max_attempts=retries + 1, base_delay=retry_delay,
                         timeout=timeout)
    return JobRunner(backend=backend, result_cache=cache,
                     retry_policy=policy, on_error=on_error)


def sweep(spec: Union[ExperimentSpec, SweepSpec, Sequence[SimJob]], *,
          parallel: bool = False,
          max_workers: Optional[int] = None,
          cache_dir: Optional[Union[str, Path]] = None,
          retries: int = 0,
          retry_delay: float = 0.0,
          timeout: Optional[float] = None,
          on_error: str = "raise") -> Any:
    """Run a sweep through the job runner (cache + chosen backend).

    Accepts an :class:`ExperimentSpec` (returns ``{label:
    [per-workload results]}``, the ``run_matrix`` shape), a
    :class:`SweepSpec` (returns its reduced value) or a plain job list
    (returns results in job order).  ``parallel`` fans the whole matrix
    over a process pool; ``cache_dir`` memoises finished jobs on disk
    keyed by config content — each job the moment it completes, so an
    interrupted sweep resumes from its last finished job when re-run
    against the same directory.

    Failure handling: each job gets ``1 + retries`` attempts with
    ``retry_delay``-seconded exponential backoff and an optional
    per-attempt ``timeout`` (seconds).  Jobs that exhaust their budget
    raise :class:`SweepError` (default) or, with ``on_error="skip"``,
    leave ``None`` in their result slots; use :func:`sweep_report` to
    also get the per-job :class:`SweepReport` ledger.
    """
    runner = _make_runner(parallel, max_workers, cache_dir,
                          retries, retry_delay, timeout, on_error)
    if isinstance(spec, ExperimentSpec):
        return spec.group(runner.run(spec.jobs()))
    if isinstance(spec, SweepSpec):
        return runner.run_sweep(spec)
    return runner.run(list(spec))


def sweep_report(spec: Union[ExperimentSpec, SweepSpec, Sequence[SimJob]], *,
                 parallel: bool = False,
                 max_workers: Optional[int] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 retries: int = 0,
                 retry_delay: float = 0.0,
                 timeout: Optional[float] = None,
                 on_error: str = "skip") -> "tuple[List[Any], SweepReport]":
    """Like :func:`sweep`, but returns ``(results, SweepReport)``.

    Results come back flat in job order (an :class:`ExperimentSpec` is
    expanded via its ``jobs()``; reshape with ``spec.group`` if every
    job succeeded), with ``None`` holes for failed jobs; the report
    accounts for every job's status, attempt count and duration —
    including cache hits.  Defaults to ``on_error="skip"`` because
    callers asking for the ledger want to inspect partial results, not
    catch exceptions.
    """
    runner = _make_runner(parallel, max_workers, cache_dir,
                          retries, retry_delay, timeout, on_error)
    if isinstance(spec, ExperimentSpec):
        jobs: Sequence[SimJob] = spec.jobs()
        name = spec.name
    elif isinstance(spec, SweepSpec):
        jobs, name = spec.jobs, spec.name
    else:
        jobs, name = list(spec), "sweep"
    return runner.run_report(jobs, name=name)


def serve(*, host: str = "127.0.0.1", port: int = 0,
          cache_dir: Optional[Union[str, Path]] = None,
          max_workers: Optional[int] = None,
          retries: int = 0,
          retry_delay: float = 0.0,
          timeout: Optional[float] = None) -> ServiceDaemon:
    """Start an in-process simulation daemon (CLI: ``repro serve``).

    Returns the started :class:`ServiceDaemon` — its HTTP server is
    already accepting requests on a background thread; read the bound
    address from ``.url`` (``port=0`` binds an ephemeral port) and stop
    it with ``.shutdown()`` + ``.close()``::

        daemon = api.serve(cache_dir="cache/")
        client = api.ServiceClient(daemon.url)
        ...
        daemon.shutdown(); daemon.close()

    The keywords mirror ``repro serve``: jobs get ``1 + retries``
    attempts with exponential backoff and an optional per-job
    wall-clock ``timeout``; with ``cache_dir`` completed jobs survive
    daemon restarts.
    """
    policy = RetryPolicy(max_attempts=retries + 1, base_delay=retry_delay,
                         timeout=timeout)
    service = SimService(cache_dir=cache_dir, max_workers=max_workers,
                         retry_policy=policy)
    daemon = ServiceDaemon(service, host=host, port=port)
    daemon.start()
    return daemon


def report(figures: Optional[Sequence[str]] = None, *,
           out_dir: Union[str, Path] = "report",
           parallel: bool = False,
           max_workers: Optional[int] = None,
           cache_dir: Optional[Union[str, Path]] = None,
           accesses: Optional[int] = None,
           per_category: Optional[int] = None,
           categories: Optional[Sequence[str]] = None,
           formats: Optional[Sequence[str]] = None) -> Any:
    """Generate a paper-report artifact directory (CLI: ``repro report``).

    ``figures`` is a list of figure ids (``api.figure_ids()`` lists
    them; ``None`` = all, an empty list is an error).  The sizing and
    execution keywords mirror the CLI flags of the same names.
    Returns the :class:`~repro.report.generate.ReportSummary` with
    per-figure artifact paths and the result-cache hit/miss counters.
    """
    from repro.experiments.common import ExperimentSetup
    from repro.report.generate import generate_report
    setup = ExperimentSetup(parallel=parallel, max_workers=max_workers,
                            result_cache_dir=cache_dir)
    if accesses is not None:
        setup.num_accesses = accesses
    if per_category is not None:
        setup.per_category = per_category
    if categories is not None:
        setup.categories = list(categories)
    return generate_report(figures, out_dir=out_dir, setup=setup,
                           formats=formats)
