"""Out-of-order core timing model.

A trace-driven, cycle-approximate model of the paper's Alder Lake-like
performance core (Table 4): 6-wide fetch/commit, a 512-entry ROB, and a
128-entry load queue.  The model captures the behaviour the paper's
results depend on — loads overlap up to the ROB's latency tolerance, and
an incomplete off-chip load at the ROB head blocks retirement and stalls
the core — without simulating every pipeline stage.
"""

from repro.cpu.core import CoreConfig, CoreStats, OutOfOrderCore

__all__ = ["CoreConfig", "CoreStats", "OutOfOrderCore"]
