"""Trace-driven out-of-order core model.

The model advances a *frontend cycle* as it dispatches instructions at the
configured width, and keeps a window of in-flight loads bounded by the
reorder-buffer size.  A load's completion time comes from the cache
hierarchy (and, with Hermes enabled, from the Hermes engine's speculative
request).  When the distance between the dispatching instruction and the
oldest incomplete load exceeds the ROB size, the frontend stalls until
that load completes — this is exactly the "off-chip load blocks
instruction retirement from the ROB" behaviour the paper quantifies
(Figs. 2 and 3), and is where Hermes's latency savings turn into saved
stall cycles and higher IPC.

Dependent loads (``depends_on_previous_load``) cannot issue before the
previous load's data returns, which limits memory-level parallelism for
pointer-chasing workloads the way real dependence chains do.

The core exposes both a one-shot :meth:`OutOfOrderCore.run` and a
step-wise API (:meth:`begin` / :meth:`step` / :meth:`finalize`) so the
multi-core driver can interleave several cores over a shared LLC and
memory controller.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.core.hermes import HermesEngine
from repro.memory.hierarchy import CacheHierarchy
from repro.workloads.trace import MemoryAccess, Trace


@dataclass
class CoreConfig:
    """Core parameters (paper Table 4 defaults)."""

    rob_size: int = 512
    fetch_width: int = 6
    commit_width: int = 6
    load_queue_size: int = 128
    store_queue_size: int = 72

    def validate(self) -> None:
        if self.rob_size <= 0:
            raise ValueError("rob_size must be positive")
        if self.fetch_width <= 0 or self.commit_width <= 0:
            raise ValueError("fetch_width and commit_width must be positive")
        if self.load_queue_size <= 0 or self.store_queue_size <= 0:
            raise ValueError("queue sizes must be positive")


@dataclass
class CoreStats:
    """Per-core execution statistics."""

    instructions: int = 0
    memory_instructions: int = 0
    loads: int = 0
    stores: int = 0
    cycles: int = 0
    offchip_loads: int = 0
    blocking_offchip_loads: int = 0
    nonblocking_offchip_loads: int = 0
    stall_cycles_offchip: int = 0
    stall_cycles_offchip_onchip_portion: int = 0
    stall_cycles_other: int = 0

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def average_offchip_stall(self) -> float:
        """Average stall cycles per blocking off-chip load (Fig. 3 metric)."""
        if self.blocking_offchip_loads == 0:
            return 0.0
        return self.stall_cycles_offchip / self.blocking_offchip_loads

    def as_dict(self) -> Dict[str, float]:
        return {
            "instructions": self.instructions,
            "memory_instructions": self.memory_instructions,
            "loads": self.loads,
            "stores": self.stores,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "offchip_loads": self.offchip_loads,
            "blocking_offchip_loads": self.blocking_offchip_loads,
            "nonblocking_offchip_loads": self.nonblocking_offchip_loads,
            "stall_cycles_offchip": self.stall_cycles_offchip,
            "stall_cycles_offchip_onchip_portion": self.stall_cycles_offchip_onchip_portion,
            "stall_cycles_other": self.stall_cycles_other,
            "average_offchip_stall": self.average_offchip_stall,
        }


@dataclass
class _InflightLoad:
    """A load that has issued but not yet (necessarily) retired."""

    instruction_index: int
    completion_cycle: int
    went_offchip: bool
    onchip_latency: int


class OutOfOrderCore:
    """Cycle-approximate out-of-order core executing a memory-access trace."""

    def __init__(self, hierarchy: CacheHierarchy,
                 hermes: Optional[HermesEngine] = None,
                 config: Optional[CoreConfig] = None) -> None:
        self.config = config or CoreConfig()
        self.config.validate()
        self.hierarchy = hierarchy
        self.hermes = hermes
        self.stats = CoreStats()
        self._inflight: Deque[_InflightLoad] = deque()
        self._dispatch_cycle = 0.0
        self._instruction_index = 0
        self._previous_load_completion = 0
        self._running = False

    # ------------------------------------------------------------------ #
    # One-shot execution
    # ------------------------------------------------------------------ #

    def run(self, trace: Trace, max_accesses: Optional[int] = None) -> CoreStats:
        """Execute ``trace`` to completion and return the execution statistics."""
        self.begin()
        accesses = trace.accesses if max_accesses is None else trace.accesses[:max_accesses]
        for access in accesses:
            self.step(access)
        return self.finalize()

    # ------------------------------------------------------------------ #
    # Step-wise execution (used by the multi-core driver)
    # ------------------------------------------------------------------ #

    def begin(self) -> None:
        """Reset dynamic state before executing a trace."""
        self._inflight.clear()
        self._dispatch_cycle = 0.0
        self._instruction_index = 0
        self._previous_load_completion = 0
        self._running = True

    def step(self, access: MemoryAccess) -> None:
        """Execute one memory-access record (plus its preceding ALU block)."""
        if not self._running:
            raise RuntimeError("call begin() before step()")
        group_size = access.nonmem_before + 1
        self._instruction_index += group_size
        self._dispatch_cycle += group_size / self.config.fetch_width

        self._retire_completed(self._dispatch_cycle)
        self._dispatch_cycle = self._enforce_rob_limit(self._dispatch_cycle,
                                                       self._instruction_index,
                                                       self.config.rob_size)

        issue_cycle = int(self._dispatch_cycle)
        if access.depends_on_previous_load:
            issue_cycle = max(issue_cycle, self._previous_load_completion)

        if access.is_load:
            completion, went_offchip, onchip_latency = self._execute_load(
                access.pc, access.address, issue_cycle)
            self._previous_load_completion = completion
            self.stats.loads += 1
            self._inflight.append(_InflightLoad(
                instruction_index=self._instruction_index,
                completion_cycle=completion,
                went_offchip=went_offchip,
                onchip_latency=onchip_latency))
            if len(self._inflight) > self.config.load_queue_size:
                self._dispatch_cycle = self._drain_oldest(self._dispatch_cycle)
        else:
            # Stores update cache state but retire off the critical path
            # through the store queue.
            self.hierarchy.store(access.address, access.pc, issue_cycle)
            self.stats.stores += 1
        self.stats.memory_instructions += 1

    def finalize(self) -> CoreStats:
        """Drain outstanding loads and close out the statistics."""
        final_cycle = self._dispatch_cycle
        while self._inflight:
            final_cycle = self._drain_oldest(final_cycle)
        self.stats.instructions = self._instruction_index
        self.stats.cycles = max(1, int(final_cycle))
        self._running = False
        return self.stats

    @property
    def current_cycle(self) -> float:
        """The frontend's current cycle (used by the multi-core scheduler)."""
        return self._dispatch_cycle

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _execute_load(self, pc: int, address: int,
                      cycle: int) -> Tuple[int, bool, int]:
        """Issue one load through Hermes (if enabled) and the hierarchy."""
        if self.hermes is not None:
            decision = self.hermes.predict_and_issue(pc, address, cycle)
            outcome = self.hierarchy.load(address, pc, cycle,
                                          hermes_ready=decision.hermes_ready)
            self.hermes.train(decision, outcome.went_offchip,
                              hermes_used=outcome.hermes_used)
        else:
            outcome = self.hierarchy.load(address, pc, cycle)
        return outcome.completion_cycle, outcome.went_offchip, outcome.onchip_latency

    def _retire_completed(self, cycle: float) -> None:
        inflight = self._inflight
        while inflight and inflight[0].completion_cycle <= cycle:
            load = inflight.popleft()
            if load.went_offchip:
                self.stats.offchip_loads += 1
                self.stats.nonblocking_offchip_loads += 1

    def _enforce_rob_limit(self, dispatch_cycle: float, instruction_index: int,
                           rob_size: int) -> float:
        inflight = self._inflight
        while inflight and (instruction_index - inflight[0].instruction_index) >= rob_size:
            dispatch_cycle = self._wait_for_oldest(dispatch_cycle)
        return dispatch_cycle

    def _drain_oldest(self, dispatch_cycle: float) -> float:
        if not self._inflight:
            return dispatch_cycle
        return self._wait_for_oldest(dispatch_cycle)

    def _wait_for_oldest(self, dispatch_cycle: float) -> float:
        load = self._inflight.popleft()
        if load.completion_cycle <= dispatch_cycle:
            if load.went_offchip:
                self.stats.offchip_loads += 1
                self.stats.nonblocking_offchip_loads += 1
            return dispatch_cycle
        stall = load.completion_cycle - dispatch_cycle
        if load.went_offchip:
            self.stats.offchip_loads += 1
            self.stats.blocking_offchip_loads += 1
            self.stats.stall_cycles_offchip += int(stall)
            # The portion of the stall the on-chip hierarchy access is
            # responsible for (Fig. 3's dark bars): everything after the L1
            # access, capped by the actual stall length.
            hidden = min(int(stall), max(0, load.onchip_latency - self.hierarchy.l1d.latency))
            self.stats.stall_cycles_offchip_onchip_portion += hidden
        else:
            self.stats.stall_cycles_other += int(stall)
        return float(load.completion_cycle)
