"""Trace-driven out-of-order core model.

The model advances a *frontend cycle* as it dispatches instructions at the
configured width, and keeps a window of in-flight loads bounded by the
reorder-buffer size.  A load's completion time comes from the cache
hierarchy (and, with Hermes enabled, from the Hermes engine's speculative
request).  When the distance between the dispatching instruction and the
oldest incomplete load exceeds the ROB size, the frontend stalls until
that load completes — this is exactly the "off-chip load blocks
instruction retirement from the ROB" behaviour the paper quantifies
(Figs. 2 and 3), and is where Hermes's latency savings turn into saved
stall cycles and higher IPC.

Dependent loads (``depends_on_previous_load``) cannot issue before the
previous load's data returns, which limits memory-level parallelism for
pointer-chasing workloads the way real dependence chains do.

The core exposes both a one-shot :meth:`OutOfOrderCore.run` and a
step-wise API (:meth:`begin` / :meth:`step` / :meth:`finalize`) so the
multi-core driver can interleave several cores over a shared LLC and
memory controller.

The in-flight load window is a ring buffer of parallel preallocated
lists (instruction index, completion cycle, off-chip flag, on-chip
latency) — ``step`` allocates nothing per load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config.schema import SerializableConfig
from repro.core.hermes import HermesEngine
from repro.dram.controller import RequestSource
from repro.memory.hierarchy import CacheHierarchy
from repro.workloads.trace import MemoryAccess, Trace


@dataclass
class CoreConfig(SerializableConfig):
    """Core parameters (paper Table 4 defaults)."""

    rob_size: int = 512
    fetch_width: int = 6
    commit_width: int = 6
    load_queue_size: int = 128
    store_queue_size: int = 72

    def validate(self) -> None:
        if self.rob_size <= 0:
            raise ValueError("rob_size must be positive")
        if self.fetch_width <= 0 or self.commit_width <= 0:
            raise ValueError("fetch_width and commit_width must be positive")
        if self.load_queue_size <= 0 or self.store_queue_size <= 0:
            raise ValueError("queue sizes must be positive")


@dataclass(slots=True)
class CoreStats:
    """Per-core execution statistics."""

    instructions: int = 0
    memory_instructions: int = 0
    loads: int = 0
    stores: int = 0
    cycles: int = 0
    offchip_loads: int = 0
    blocking_offchip_loads: int = 0
    nonblocking_offchip_loads: int = 0
    stall_cycles_offchip: int = 0
    stall_cycles_offchip_onchip_portion: int = 0
    stall_cycles_other: int = 0

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def average_offchip_stall(self) -> float:
        """Average stall cycles per blocking off-chip load (Fig. 3 metric)."""
        if self.blocking_offchip_loads == 0:
            return 0.0
        return self.stall_cycles_offchip / self.blocking_offchip_loads

    def as_dict(self) -> Dict[str, float]:
        return {
            "instructions": self.instructions,
            "memory_instructions": self.memory_instructions,
            "loads": self.loads,
            "stores": self.stores,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "offchip_loads": self.offchip_loads,
            "blocking_offchip_loads": self.blocking_offchip_loads,
            "nonblocking_offchip_loads": self.nonblocking_offchip_loads,
            "stall_cycles_offchip": self.stall_cycles_offchip,
            "stall_cycles_offchip_onchip_portion": self.stall_cycles_offchip_onchip_portion,
            "stall_cycles_other": self.stall_cycles_other,
            "average_offchip_stall": self.average_offchip_stall,
        }


class OutOfOrderCore:
    """Cycle-approximate out-of-order core executing a memory-access trace."""

    __slots__ = ("config", "hierarchy", "hermes", "stats",
                 "_il_capacity", "_il_index", "_il_completion", "_il_offchip",
                 "_il_onchip", "_il_head", "_il_count",
                 "_dispatch_cycle", "_instruction_index",
                 "_previous_load_completion", "_running",
                 "_fetch_width", "_rob_size", "_lq_size", "_l1_latency")

    def __init__(self, hierarchy: CacheHierarchy,
                 hermes: Optional[HermesEngine] = None,
                 config: Optional[CoreConfig] = None) -> None:
        self.config = config or CoreConfig()
        self.config.validate()
        self.hierarchy = hierarchy
        self.hermes = hermes
        self.stats = CoreStats()
        # Ring buffer of in-flight loads (parallel arrays).  The window
        # never exceeds load_queue_size + 1 entries: step() drains the
        # oldest load as soon as the queue overflows.
        self._il_capacity = self.config.load_queue_size + 2
        self._il_index = [0] * self._il_capacity
        self._il_completion = [0] * self._il_capacity
        self._il_offchip = [False] * self._il_capacity
        self._il_onchip = [0] * self._il_capacity
        self._il_head = 0
        self._il_count = 0
        self._dispatch_cycle = 0.0
        self._instruction_index = 0
        self._previous_load_completion = 0
        self._running = False
        # Hot-loop constants hoisted out of the config dataclass.
        self._fetch_width = self.config.fetch_width
        self._rob_size = self.config.rob_size
        self._lq_size = self.config.load_queue_size
        self._l1_latency = hierarchy.l1d.latency

    # ------------------------------------------------------------------ #
    # One-shot execution
    # ------------------------------------------------------------------ #

    def run(self, trace: Trace, max_accesses: Optional[int] = None) -> CoreStats:
        """Execute ``trace`` to completion and return the execution statistics."""
        self.begin()
        accesses = trace.accesses
        total = len(accesses) if max_accesses is None else min(max_accesses,
                                                               len(accesses))
        self.run_span(accesses, 0, total)
        return self.finalize()

    # repro: hot
    def run_span(self, accesses, start: int, stop: int) -> None:
        """Execute ``accesses[start:stop]`` with the hot loop fully inlined.

        Semantically identical to calling :meth:`step` per record (the
        arithmetic is the same, statement for statement), but core state
        and statistics counters live in locals for the whole span and are
        flushed back once at the end — the single-core drivers' main loop.
        ``step`` remains for access-by-access interleaving (multi-core).
        """
        if not self._running:
            raise RuntimeError("call begin() before run_span()")
        stats = self.stats
        hierarchy = self.hierarchy
        hermes = self.hermes
        hierarchy_load = hierarchy.load
        hierarchy_store = hierarchy.store
        if hermes is not None:
            # Pre-bound pieces of HermesEngine.predict_and_issue / train,
            # inlined below (same statements, span-local bindings).
            predictor_predict = hermes.predictor.predict
            predictor_train = hermes.predictor.train
            hermes_stats = hermes.stats
            hermes_context = hermes._context
            hermes_enabled = hermes._enabled
            hermes_request_delay = hermes._request_delay
            hermes_drain_interval = hermes._drain_interval
            hermes_loads_since_drain = hermes._loads_since_drain
            mc_access = hermes.memory_controller.access
            mc_drain = hermes.memory_controller.drain_unclaimed_hermes
            hermes_source = RequestSource.HERMES
        fetch_width = self._fetch_width
        rob_size = self._rob_size
        lq_size = self._lq_size
        capacity = self._il_capacity
        indices = self._il_index
        completions = self._il_completion
        offchips = self._il_offchip
        onchips = self._il_onchip
        l1_latency = self._l1_latency
        head = self._il_head
        count = self._il_count
        dispatch_cycle = self._dispatch_cycle
        instruction_index = self._instruction_index
        previous_load_completion = self._previous_load_completion
        # Batched statistics (flushed to self.stats after the span).
        n_loads = n_stores = 0
        n_offchip = n_blocking = n_nonblocking = 0
        stall_offchip = stall_onchip_portion = stall_other = 0

        def pop_oldest_stall() -> None:
            """Pop the oldest in-flight load, accounting any stall (inline
            twin of _wait_for_oldest operating on the span's locals)."""
            nonlocal dispatch_cycle, head, count, n_offchip, n_blocking, \
                n_nonblocking, stall_offchip, stall_onchip_portion, stall_other
            completion = completions[head]
            went_offchip = offchips[head]
            onchip_latency = onchips[head]
            head += 1
            if head == capacity:
                head = 0
            count -= 1
            if completion <= dispatch_cycle:
                if went_offchip:
                    n_offchip += 1
                    n_nonblocking += 1
                return
            stall = completion - dispatch_cycle
            if went_offchip:
                n_offchip += 1
                n_blocking += 1
                stall_offchip += int(stall)
                hidden = onchip_latency - l1_latency
                if hidden < 0:
                    hidden = 0
                if hidden > int(stall):
                    hidden = int(stall)
                stall_onchip_portion += hidden
            else:
                stall_other += int(stall)
            dispatch_cycle = float(completion)

        for position in range(start, stop):
            access = accesses[position]
            group_size = access.nonmem_before + 1
            instruction_index += group_size
            dispatch_cycle += group_size / fetch_width

            while count and completions[head] <= dispatch_cycle:
                if offchips[head]:
                    n_offchip += 1
                    n_nonblocking += 1
                head += 1
                if head == capacity:
                    head = 0
                count -= 1
            while count and (instruction_index - indices[head]) >= rob_size:
                pop_oldest_stall()

            issue_cycle = int(dispatch_cycle)
            if access.depends_on_previous_load and previous_load_completion > issue_cycle:
                issue_cycle = previous_load_completion

            if access.is_load:
                pc = access.pc
                address = access.address
                if hermes is not None:
                    # HermesEngine.predict_and_issue, inlined.
                    hermes_stats.loads_seen += 1
                    hermes_context.pc = pc
                    hermes_context.address = address
                    hermes_context.cycle = issue_cycle
                    record = predictor_predict(hermes_context)
                    if hermes_enabled and record.predicted_offchip:
                        hermes_stats.predicted_offchip += 1
                        hermes_ready = mc_access(
                            address, issue_cycle + hermes_request_delay,
                            hermes_source)
                        hermes_stats.hermes_requests_issued += 1
                    else:
                        hermes_ready = None
                    hermes_loads_since_drain += 1
                    if hermes_loads_since_drain >= hermes_drain_interval:
                        hermes_loads_since_drain = 0
                        mc_drain(issue_cycle)
                    outcome = hierarchy_load(address, pc, issue_cycle,
                                             hermes_ready)
                    # HermesEngine.train, inlined.
                    if outcome.hermes_used:
                        hermes_stats.hermes_requests_useful += 1
                    predictor_train(record, outcome.went_offchip)
                else:
                    outcome = hierarchy_load(address, pc, issue_cycle)
                completion = outcome.completion_cycle
                previous_load_completion = completion
                n_loads += 1
                tail = head + count
                if tail >= capacity:
                    tail -= capacity
                indices[tail] = instruction_index
                completions[tail] = completion
                offchips[tail] = outcome.went_offchip
                onchips[tail] = outcome.onchip_latency
                count += 1
                if count > lq_size:
                    pop_oldest_stall()
            else:
                hierarchy_store(access.address, access.pc, issue_cycle)
                n_stores += 1

        # Flush span state and counters back to the instance.
        if hermes is not None:
            hermes._loads_since_drain = hermes_loads_since_drain
        self._il_head = head
        self._il_count = count
        self._dispatch_cycle = dispatch_cycle
        self._instruction_index = instruction_index
        self._previous_load_completion = previous_load_completion
        stats.loads += n_loads
        stats.stores += n_stores
        stats.memory_instructions += (stop - start)
        stats.offchip_loads += n_offchip
        stats.blocking_offchip_loads += n_blocking
        stats.nonblocking_offchip_loads += n_nonblocking
        stats.stall_cycles_offchip += stall_offchip
        stats.stall_cycles_offchip_onchip_portion += stall_onchip_portion
        stats.stall_cycles_other += stall_other

    # ------------------------------------------------------------------ #
    # Step-wise execution (used by the multi-core driver)
    # ------------------------------------------------------------------ #

    def begin(self) -> None:
        """Reset dynamic state before executing a trace."""
        self._il_head = 0
        self._il_count = 0
        self._dispatch_cycle = 0.0
        self._instruction_index = 0
        self._previous_load_completion = 0
        self._running = True

    def step(self, access: MemoryAccess) -> None:
        """Execute one memory-access record (plus its preceding ALU block)."""
        if not self._running:
            raise RuntimeError("call begin() before step()")
        stats = self.stats
        group_size = access.nonmem_before + 1
        instruction_index = self._instruction_index + group_size
        self._instruction_index = instruction_index
        dispatch_cycle = self._dispatch_cycle + group_size / self._fetch_width

        # Retire completed loads that the frontend has caught up with.
        completions = self._il_completion
        head = self._il_head
        count = self._il_count
        capacity = self._il_capacity
        offchips = self._il_offchip
        while count and completions[head] <= dispatch_cycle:
            if offchips[head]:
                stats.offchip_loads += 1
                stats.nonblocking_offchip_loads += 1
            head = (head + 1) % capacity
            count -= 1
        self._il_head = head
        self._il_count = count

        # ROB limit: stall until the oldest in-flight load completes.
        rob_size = self._rob_size
        indices = self._il_index
        while self._il_count and (instruction_index - indices[self._il_head]) >= rob_size:
            dispatch_cycle = self._wait_for_oldest(dispatch_cycle)

        issue_cycle = int(dispatch_cycle)
        if access.depends_on_previous_load:
            previous = self._previous_load_completion
            if previous > issue_cycle:
                issue_cycle = previous

        if access.is_load:
            completion, went_offchip, onchip_latency = self._execute_load(
                access.pc, access.address, issue_cycle)
            self._previous_load_completion = completion
            stats.loads += 1
            tail = (self._il_head + self._il_count) % capacity
            self._il_index[tail] = instruction_index
            completions[tail] = completion
            offchips[tail] = went_offchip
            self._il_onchip[tail] = onchip_latency
            self._il_count += 1
            if self._il_count > self._lq_size:
                dispatch_cycle = self._wait_for_oldest(dispatch_cycle)
        else:
            # Stores update cache state but retire off the critical path
            # through the store queue.
            self.hierarchy.store(access.address, access.pc, issue_cycle)
            stats.stores += 1
        stats.memory_instructions += 1
        self._dispatch_cycle = dispatch_cycle

    def finalize(self) -> CoreStats:
        """Drain outstanding loads and close out the statistics."""
        final_cycle = self._dispatch_cycle
        while self._il_count:
            final_cycle = self._wait_for_oldest(final_cycle)
        self.stats.instructions = self._instruction_index
        self.stats.cycles = max(1, int(final_cycle))
        self._running = False
        return self.stats

    @property
    def current_cycle(self) -> float:
        """The frontend's current cycle (used by the multi-core scheduler)."""
        return self._dispatch_cycle

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _execute_load(self, pc: int, address: int,
                      cycle: int) -> Tuple[int, bool, int]:
        """Issue one load through Hermes (if enabled) and the hierarchy."""
        hermes = self.hermes
        if hermes is not None:
            decision = hermes.predict_and_issue(pc, address, cycle)
            outcome = self.hierarchy.load(address, pc, cycle,
                                          hermes_ready=decision.hermes_ready)
            hermes.train(decision, outcome.went_offchip,
                         hermes_used=outcome.hermes_used)
        else:
            outcome = self.hierarchy.load(address, pc, cycle)
        return outcome.completion_cycle, outcome.went_offchip, outcome.onchip_latency

    def _wait_for_oldest(self, dispatch_cycle: float) -> float:
        """Pop the oldest in-flight load, accounting any stall it causes."""
        head = self._il_head
        completion = self._il_completion[head]
        went_offchip = self._il_offchip[head]
        onchip_latency = self._il_onchip[head]
        self._il_head = (head + 1) % self._il_capacity
        self._il_count -= 1
        stats = self.stats
        if completion <= dispatch_cycle:
            if went_offchip:
                stats.offchip_loads += 1
                stats.nonblocking_offchip_loads += 1
            return dispatch_cycle
        stall = completion - dispatch_cycle
        if went_offchip:
            stats.offchip_loads += 1
            stats.blocking_offchip_loads += 1
            stats.stall_cycles_offchip += int(stall)
            # The portion of the stall the on-chip hierarchy access is
            # responsible for (Fig. 3's dark bars): everything after the L1
            # access, capped by the actual stall length.
            hidden = min(int(stall), max(0, onchip_latency - self._l1_latency))
            stats.stall_cycles_offchip_onchip_portion += hidden
        else:
            stats.stall_cycles_other += int(stall)
        return float(completion)
