"""Hermes mechanism: issuing and tracking speculative main-memory requests.

This package contains the paper's primary contribution glue: the
:class:`~repro.core.hermes.HermesEngine` couples an off-chip predictor
(typically POPET) with the main-memory controller, issuing a *Hermes
request* for every load the predictor flags as off-chip and providing the
completion cycle the cache hierarchy should wait on if the load indeed
misses the LLC.
"""

from repro.core.hermes import HermesConfig, HermesEngine, HermesStats

__all__ = ["HermesConfig", "HermesEngine", "HermesStats"]
