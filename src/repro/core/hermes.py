"""The Hermes engine (Sections 5 and 6.2 of the paper).

For every demand load the core generates:

1. The off-chip predictor is consulted at load-queue allocation
   (``predict_and_issue``).  If it predicts the load will go off-chip, a
   *Hermes request* is issued directly to the main-memory controller once
   the physical address is available, after the configurable *Hermes
   request issue latency* (6 cycles for Hermes-O, 18 for Hermes-P,
   Table 4).
2. The regular load proceeds through the cache hierarchy.  If it misses
   the LLC it waits for the in-flight Hermes request instead of paying a
   fresh DRAM access — that waiting is implemented by the hierarchy; the
   engine only supplies the ``hermes_ready`` cycle.
3. When the load returns to the core, ``train`` updates the predictor
   with the true outcome and the accuracy/coverage statistics.

Mispredicted Hermes requests are dropped by the memory controller without
filling the cache hierarchy, so no coherence recovery is needed; the
engine periodically asks the controller to drain them so the wasted
requests are visible in the overhead statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config.schema import SerializableConfig
from repro.dram.controller import MemoryController, RequestSource
from repro.offchip.base import LoadContext, OffChipPredictor, PredictionRecord


@dataclass
class HermesConfig(SerializableConfig):
    """Hermes datapath parameters.

    ``issue_latency`` is the Hermes request issue latency: the cycles
    needed for the speculative request to reach the memory controller
    after the load's physical address is generated.  The paper evaluates
    an optimistic (6-cycle, "Hermes-O") and a pessimistic (18-cycle,
    "Hermes-P") variant and sweeps 0-24 cycles in Fig. 17(c).
    """

    enabled: bool = True
    issue_latency: int = 6
    address_generation_latency: int = 1
    drain_interval: int = 512

    def validate(self) -> None:
        if self.issue_latency < 0 or self.address_generation_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.drain_interval <= 0:
            raise ValueError("drain_interval must be positive")

    @classmethod
    def optimistic(cls) -> "HermesConfig":
        """Hermes-O (6-cycle issue latency)."""
        return cls(issue_latency=6)

    @classmethod
    def pessimistic(cls) -> "HermesConfig":
        """Hermes-P (18-cycle issue latency)."""
        return cls(issue_latency=18)

    @classmethod
    def disabled(cls) -> "HermesConfig":
        return cls(enabled=False)


@dataclass(slots=True)
class HermesStats:
    """Hermes-request accounting."""

    loads_seen: int = 0
    predicted_offchip: int = 0
    hermes_requests_issued: int = 0
    hermes_requests_useful: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "loads_seen": self.loads_seen,
            "predicted_offchip": self.predicted_offchip,
            "hermes_requests_issued": self.hermes_requests_issued,
            "hermes_requests_useful": self.hermes_requests_useful,
        }


class HermesDecision:
    """The engine's output for one load.

    One instance is owned (and reused) by each :class:`HermesEngine`; its
    fields are valid until the engine's next ``predict_and_issue`` call.
    """

    __slots__ = ("record", "hermes_ready")

    def __init__(self, record: Optional[PredictionRecord] = None,
                 hermes_ready: Optional[int] = None) -> None:
        self.record = record
        self.hermes_ready = hermes_ready

    @property
    def predicted_offchip(self) -> bool:
        return self.record.predicted_offchip


class HermesEngine:
    """Couples an off-chip predictor with the main-memory controller."""

    __slots__ = ("config", "predictor", "memory_controller", "stats",
                 "_loads_since_drain", "_context", "_decision",
                 "_enabled", "_request_delay", "_drain_interval")

    def __init__(self, predictor: OffChipPredictor,
                 memory_controller: MemoryController,
                 config: Optional[HermesConfig] = None) -> None:
        config = config or HermesConfig()
        config.validate()
        self.config = config
        self.predictor = predictor
        self.memory_controller = memory_controller
        self.stats = HermesStats()
        self._loads_since_drain = 0
        # Reused per-load records (zero-allocation hot path): valid until
        # the next predict_and_issue call.
        self._context = LoadContext(pc=0, address=0, cycle=0)
        self._decision = HermesDecision()
        # Hot-loop constants hoisted out of the config dataclass.
        self._enabled = config.enabled
        self._request_delay = (config.address_generation_latency
                               + config.issue_latency)
        self._drain_interval = config.drain_interval

    # ------------------------------------------------------------------ #

    def predict_and_issue(self, pc: int, address: int, cycle: int) -> HermesDecision:
        """Run the predictor for a load and issue a Hermes request if indicated.

        Returns the engine's reused :class:`HermesDecision` whose
        ``hermes_ready`` is the cycle at which the speculative data will
        be available at the memory controller (``None`` when no Hermes
        request was issued).
        """
        stats = self.stats
        stats.loads_seen += 1
        context = self._context
        context.pc = pc
        context.address = address
        context.cycle = cycle
        record = self.predictor.predict(context)
        hermes_ready: Optional[int] = None
        if self._enabled and record.predicted_offchip:
            stats.predicted_offchip += 1
            hermes_ready = self.memory_controller.access(
                address, cycle + self._request_delay, RequestSource.HERMES)
            stats.hermes_requests_issued += 1
        loads_since_drain = self._loads_since_drain + 1
        if loads_since_drain >= self._drain_interval:
            self._loads_since_drain = 0
            self.memory_controller.drain_unclaimed_hermes(cycle)
        else:
            self._loads_since_drain = loads_since_drain
        decision = self._decision
        decision.record = record
        decision.hermes_ready = hermes_ready
        return decision

    def train(self, decision: HermesDecision, went_offchip: bool,
              hermes_used: bool = False) -> None:
        """Train the predictor with the true outcome of the load."""
        if hermes_used:
            self.stats.hermes_requests_useful += 1
        self.predictor.train(decision.record, went_offchip)

    # ------------------------------------------------------------------ #

    def storage_bits(self) -> int:
        """Total Hermes storage: just the predictor's metadata (Table 3)."""
        return self.predictor.storage_bits()

    @property
    def storage_kb(self) -> float:
        return self.storage_bits() / 8 / 1024
