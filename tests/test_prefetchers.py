"""Unit tests for the prefetcher implementations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.address import BLOCK_SIZE, PAGE_SIZE, page_number
from repro.prefetchers import (
    BingoPrefetcher,
    MLOPPrefetcher,
    NextLinePrefetcher,
    NoPrefetcher,
    PythiaPrefetcher,
    SMSPrefetcher,
    SPPPrefetcher,
    StridePrefetcher,
    StreamerPrefetcher,
    available_prefetchers,
    make_prefetcher,
)

ALL_NAMES = ["none", "next_line", "stride", "streamer", "spp", "bingo", "mlop",
             "sms", "pythia"]


def drive_stream(prefetcher, base=0x100000, count=200, stride_blocks=1, pc=0x400):
    """Feed a sequential stream and collect all candidates."""
    candidates = []
    for index in range(count):
        address = base + index * stride_blocks * BLOCK_SIZE
        candidates.extend(prefetcher.on_demand_access(address, pc, cycle=index * 50,
                                                      hit=False))
    return candidates


def test_factory_lists_and_builds_all():
    assert set(ALL_NAMES) <= set(available_prefetchers())
    for name in ALL_NAMES:
        prefetcher = make_prefetcher(name)
        assert prefetcher.name == name


def test_factory_rejects_unknown():
    with pytest.raises(KeyError, match="available"):
        make_prefetcher("not-a-prefetcher")


def test_no_prefetcher_never_prefetches():
    assert drive_stream(NoPrefetcher()) == []


def test_next_line_prefetches_sequential_lines():
    prefetcher = NextLinePrefetcher(degree=2)
    candidates = prefetcher.on_demand_access(0x100000, 0x400, 0, hit=False)
    assert candidates == [0x100040, 0x100080]


def test_next_line_does_not_cross_page():
    prefetcher = NextLinePrefetcher(degree=4)
    last_line = 0x100000 + PAGE_SIZE - BLOCK_SIZE
    assert prefetcher.on_demand_access(last_line, 0x400, 0, hit=False) == []


def test_stride_prefetcher_learns_constant_stride():
    prefetcher = StridePrefetcher(degree=2)
    candidates = drive_stream(prefetcher, stride_blocks=2, count=20)
    assert candidates, "stride prefetcher should trigger after confidence builds"
    # All candidates must continue the detected +2-block stride.
    deltas = {(c // BLOCK_SIZE) % 2 for c in candidates}
    assert deltas == {0}


def test_streamer_detects_ascending_stream():
    prefetcher = StreamerPrefetcher(degree=2)
    candidates = drive_stream(prefetcher, count=30)
    assert candidates
    assert all(c % BLOCK_SIZE == 0 for c in candidates)


@pytest.mark.parametrize("cls", [SPPPrefetcher, MLOPPrefetcher, PythiaPrefetcher])
def test_delta_learning_prefetchers_cover_a_stream(cls):
    prefetcher = cls()
    candidates = drive_stream(prefetcher, count=400)
    assert len(candidates) > 0


@pytest.mark.parametrize("cls", [SMSPrefetcher, BingoPrefetcher])
def test_footprint_prefetchers_cover_recurring_regions(cls):
    """SMS/Bingo learn per-region footprints and replay them when regions recur."""
    prefetcher = cls(active_regions=8)
    candidates = []
    for round_index in range(2):
        for region in range(32):
            page = 0x100000 + region * PAGE_SIZE
            for offset in (0, 5, 9):
                candidates.extend(prefetcher.on_demand_access(
                    page + offset * BLOCK_SIZE, pc=0x440,
                    cycle=round_index * 100000 + region * 100, hit=False))
    assert len(candidates) > 0


@pytest.mark.parametrize("name", ALL_NAMES)
def test_candidates_stay_within_the_demand_page(name):
    prefetcher = make_prefetcher(name)
    base = 0x340000
    for index in range(300):
        address = base + (index * 3 % 64) * BLOCK_SIZE
        for candidate in prefetcher.on_demand_access(address, 0x400 + (index % 7) * 4,
                                                     cycle=index * 20, hit=False):
            assert page_number(candidate) == page_number(address)
            assert candidate >= 0


def test_sms_replays_footprint_on_trigger_repeat():
    prefetcher = SMSPrefetcher(active_regions=1)
    page_a, page_b, page_c = 0x100000, 0x200000, 0x300000
    # Build a footprint in page A: trigger at offset 0, then lines 3 and 7.
    for offset in (0, 3, 7):
        prefetcher.on_demand_access(page_a + offset * BLOCK_SIZE, pc=0x404, cycle=0,
                                    hit=False)
    # Touch another page so page A's generation is committed to the PHT.
    prefetcher.on_demand_access(page_b, pc=0x800, cycle=10, hit=False)
    # Same trigger (PC 0x404, offset 0) in a new page replays the footprint.
    candidates = prefetcher.on_demand_access(page_c, pc=0x404, cycle=20, hit=False)
    offsets = sorted((c - page_c) // BLOCK_SIZE for c in candidates)
    assert offsets == [3, 7]


def test_bingo_falls_back_to_short_event():
    prefetcher = BingoPrefetcher(active_regions=1)
    page_a, page_b, page_c = 0x400000, 0x500000, 0x600000
    for offset in (5, 6, 9):
        prefetcher.on_demand_access(page_a + offset * BLOCK_SIZE, pc=0x40C, cycle=0,
                                    hit=False)
    prefetcher.on_demand_access(page_b, pc=0x999, cycle=5, hit=False)
    # New page, same PC and same trigger offset: the PC+offset event matches.
    candidates = prefetcher.on_demand_access(page_c + 5 * BLOCK_SIZE, pc=0x40C,
                                             cycle=10, hit=False)
    offsets = sorted((c - page_c) // BLOCK_SIZE for c in candidates)
    assert offsets == [6, 9]


def test_pythia_stops_prefetching_random_pattern():
    prefetcher = PythiaPrefetcher(seed=3)
    import random
    rng = random.Random(11)
    issued_late = 0
    total = 4000
    for index in range(total):
        page = rng.randrange(4096)
        offset = rng.randrange(64)
        address = (page << 12) | (offset << 6)
        candidates = prefetcher.on_demand_access(address, pc=0x400, cycle=index * 30,
                                                 hit=False)
        if index > total // 2:
            issued_late += len(candidates)
    # After training on a purely random pattern, prefetching should be rare.
    assert issued_late < total // 8


def test_pythia_is_deterministic_given_seed():
    a = PythiaPrefetcher(seed=7)
    b = PythiaPrefetcher(seed=7)
    assert drive_stream(a, count=100) == drive_stream(b, count=100)


def test_storage_bits_match_paper_table6():
    assert make_prefetcher("pythia").storage_kb == pytest.approx(25.5)
    assert make_prefetcher("bingo").storage_kb == pytest.approx(46.0)
    assert make_prefetcher("spp").storage_kb == pytest.approx(39.3, abs=0.05)
    assert make_prefetcher("mlop").storage_kb == pytest.approx(8.0)
    assert make_prefetcher("sms").storage_kb == pytest.approx(20.0)


def test_stats_count_observations_and_candidates():
    prefetcher = NextLinePrefetcher()
    prefetcher.on_demand_access(0x100000, 0x400, 0, hit=False)
    assert prefetcher.stats.accesses_observed == 1
    assert prefetcher.stats.candidates_issued == 1


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(ALL_NAMES),
       st.lists(st.tuples(st.integers(0, 1 << 20), st.integers(0, 63)), max_size=150))
def test_prefetchers_never_crash_or_emit_negative_addresses(name, accesses):
    prefetcher = make_prefetcher(name)
    for index, (page, offset) in enumerate(accesses):
        address = (page << 12) | (offset << 6)
        for candidate in prefetcher.on_demand_access(address, pc=0x400 + page % 16,
                                                     cycle=index * 10, hit=bool(index % 2)):
            assert candidate >= 0
