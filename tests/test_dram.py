"""Unit tests for the DRAM configuration, timing and controller."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.config import DRAMConfig
from repro.dram.controller import MemoryController, RequestSource
from repro.dram.timing import BankState, DRAMTiming


def test_config_derived_cycles():
    config = DRAMConfig()
    assert config.trcd_cycles == 50       # 12.5 ns at 4 GHz
    assert config.trp_cycles == 50
    assert config.tcas_cycles == 50
    assert config.burst_cycles == 10      # 64 B over DDR4-3200 at 4 GHz
    assert config.total_banks == config.channels * config.ranks_per_channel * config.banks_per_rank


def test_config_scaling_changes_burst_time():
    config = DRAMConfig()
    slower = config.scaled(800)
    assert slower.transfer_rate_mtps == 800
    assert slower.burst_cycles == 4 * config.burst_cycles


def test_config_validation():
    with pytest.raises(ValueError):
        DRAMConfig(channels=0).validate()
    with pytest.raises(ValueError):
        DRAMConfig(transfer_rate_mtps=0).validate()


def test_timing_row_hit_miss_conflict():
    config = DRAMConfig()
    timing = DRAMTiming(config)
    bank = BankState()
    latency, kind = timing.access_latency(bank, row=5)
    assert kind == "miss"
    assert latency == config.trcd_cycles + config.tcas_cycles
    latency, kind = timing.access_latency(bank, row=5)
    assert kind == "hit"
    assert latency == config.tcas_cycles
    latency, kind = timing.access_latency(bank, row=9)
    assert kind == "conflict"
    assert latency == config.trp_cycles + config.trcd_cycles + config.tcas_cycles


def test_controller_single_access_latency():
    controller = MemoryController()
    ready = controller.access(0x10000, cycle=100)
    config = controller.config
    expected = 100 + config.trcd_cycles + config.tcas_cycles + config.burst_cycles
    assert ready == expected
    assert controller.stats.demand_requests == 1


def test_controller_row_buffer_hit_is_faster():
    controller = MemoryController()
    first_latency = controller.access(0x10000, cycle=0) - 0
    second_start = first_latency
    second_latency = controller.access(0x10040, cycle=second_start) - second_start
    assert second_latency < first_latency


def test_controller_merges_requests_to_same_block():
    controller = MemoryController()
    first_ready = controller.access(0x20000, cycle=0)
    second_ready = controller.access(0x20000, cycle=10)
    assert second_ready == first_ready
    assert controller.stats.merged_requests == 1


def test_hermes_request_matching_and_claim():
    controller = MemoryController()
    hermes_ready = controller.access(0x30000, cycle=0, source=RequestSource.HERMES)
    assert controller.lookup_inflight(0x30000, cycle=10) == hermes_ready
    assert controller.claim_hermes(0x30000)
    assert controller.stats.hermes_consumed == 1
    # Claiming twice must fail (already consumed).
    assert not controller.claim_hermes(0x30000)


def test_unclaimed_hermes_requests_are_dropped():
    controller = MemoryController()
    ready = controller.access(0x40000, cycle=0, source=RequestSource.HERMES)
    dropped = controller.drain_unclaimed_hermes(cycle=ready + 1)
    assert dropped == 1
    assert controller.stats.hermes_dropped == 1


def test_demand_merging_with_hermes_counts_consumption():
    controller = MemoryController()
    controller.access(0x50000, cycle=0, source=RequestSource.HERMES)
    controller.access(0x50000, cycle=5, source=RequestSource.DEMAND)
    assert controller.stats.hermes_consumed == 1
    assert controller.stats.merged_requests == 1


def test_channel_bandwidth_serialises_bursts():
    config = DRAMConfig(banks_per_rank=16)
    controller = MemoryController(config)
    # Two requests to different banks at the same cycle: the second data
    # transfer must wait for the first to release the channel.
    first_ready = controller.access(0x0, cycle=0)
    second_ready = controller.access(0x100000, cycle=0)
    assert second_ready >= first_ready + config.burst_cycles


def test_row_buffer_hit_rate_metric():
    controller = MemoryController()
    controller.access(0x0, cycle=0)
    controller.access(0x40, cycle=200)
    assert 0.0 < controller.row_buffer_hit_rate() <= 1.0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 22),
                          st.integers(min_value=0, max_value=5000)),
                min_size=1, max_size=100))
def test_ready_cycle_never_before_arrival(requests):
    controller = MemoryController()
    cycle = 0
    for block, gap in requests:
        cycle += gap
        ready = controller.access(block * 64, cycle=cycle)
        assert ready >= cycle


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=60))
def test_request_accounting_adds_up(blocks):
    controller = MemoryController()
    for index, block in enumerate(blocks):
        source = RequestSource.HERMES if index % 3 == 0 else RequestSource.DEMAND
        controller.access(block * 64, cycle=index * 7, source=source)
    stats = controller.stats
    assert stats.total_requests == stats.demand_requests + stats.prefetch_requests \
        + stats.hermes_requests + stats.writeback_requests
    assert stats.total_requests == len(blocks)
