"""Concurrency tests for the simulation-as-a-service subsystem.

Every claim the service design makes is asserted here, not narrated:

* **exactly-once** — N concurrent clients submitting overlapping job
  sets collectively execute each unique content key exactly once
  (``executed_per_key``), and every client reads byte-identical result
  payloads;
* **crash-restart** — a daemon kill -9'd mid-sweep loses only in-flight
  work: a restart over the same cache directory serves completed jobs
  from checksummed checkpoints and re-executes only the missing ones;
* **timeouts** — hung jobs are marked ``timeout`` by the lazy wall-clock
  deadline and their late results are discarded, never cached.

The in-process tests gate execution with events to freeze jobs
deterministically mid-flight; the HTTP and kill -9 tests run the real
daemon (the latter through ``repro serve`` / ``repro submit``).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.runner import FaultPlan, FaultSpec, ResultCache, RetryPolicy, SimJob
from repro.runner.execute import run_job_attempt
from repro.runner.faults import FAULTS_ENV
from repro.service import (
    DriverWorkload,
    LoadDriver,
    ProtocolError,
    ServiceClient,
    ServiceDaemon,
    ServiceError,
    SimService,
    SyntheticReqGenEngine,
    TraceReplayReqGenEngine,
    canonical_json,
    parse_submission,
    percentile,
)
from repro.service.driver import main as driver_main, record_trace
from repro.service.server import TERMINAL_STATES
from repro.sim.config import SystemConfig

from _timeouts import scaled

REPO_ROOT = Path(__file__).resolve().parent.parent


def _job(label="svc", accesses=400, workload="ligra.pagerank"):
    return SimJob(config=SystemConfig(label=label), workload=workload,
                  num_accesses=accesses)


def _jobs(n, accesses=400):
    return [_job(f"svc{i}", accesses + i) for i in range(n)]


@pytest.fixture(scope="module")
def tiny_result():
    """One real simulation result, reused as a canned execute() value."""
    return run_job_attempt(_job("canned"))


def _spin_until(predicate, budget=10.0, message="condition"):
    deadline = time.monotonic() + scaled(budget)
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"{message} not reached within {scaled(budget):g}s")
        time.sleep(0.005)


# --------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------- #

def test_job_document_round_trips_with_identical_key():
    job = _job("wire", workload="spec06.stencil")
    doc = json.loads(json.dumps(job.to_dict()))  # through real JSON
    again = SimJob.from_dict(doc)
    assert again == job
    assert again.key() == job.key()


def test_job_document_parsing_is_strict():
    doc = _job().to_dict()
    with pytest.raises(ValueError):
        SimJob.from_dict({**doc, "surprise": 1})
    with pytest.raises(ValueError):
        SimJob.from_dict({**doc, "num_accesses": "many"})
    with pytest.raises(ValueError):
        SimJob.from_dict({**doc, "job_schema": 999})
    missing = dict(doc)
    del missing["config"]
    with pytest.raises(ValueError):
        SimJob.from_dict(missing)


def test_parse_submission_rejects_malformed_envelopes():
    good = _job().to_dict()
    for bad in (
        [],                                        # not an object
        {},                                        # neither jobs nor spec
        {"jobs": [good], "spec": {}},              # both
        {"jobs": []},                              # empty
        {"jobs": [good], "accesses": 100},         # accesses without spec
        {"jobs": [good], "protocol": 99},          # wrong protocol
        {"jobs": [good], "shard": 3},              # unknown key
        {"jobs": [{**good, "num_accesses": -1}]},  # bad job doc
    ):
        with pytest.raises(ProtocolError):
            parse_submission(bad)


def test_parse_submission_expands_specs_server_side():
    spec_doc = {
        "spec_version": 1,
        "name": "svc-spec",
        "accesses": 500,
        "workloads": ["ligra.bfs", "spec06.stencil"],
        "base": {"prefetcher": "pythia"},
        "axes": [{"name": "system",
                  "points": [{"label": "baseline"}]}],
    }
    jobs, name = parse_submission({"spec": spec_doc})
    assert name == "svc-spec" and len(jobs) == 2
    assert {j.num_accesses for j in jobs} == {500}
    resized, _ = parse_submission({"spec": spec_doc, "accesses": 250})
    assert {j.num_accesses for j in resized} == {250}
    with pytest.raises(ProtocolError):
        parse_submission({"spec": {"spec_version": 1}})  # invalid spec


def test_canonical_json_is_order_independent():
    assert (canonical_json({"b": 1, "a": [1, 2]})
            == canonical_json({"a": [1, 2], "b": 1})
            == '{"a":[1,2],"b":1}')


# --------------------------------------------------------------------- #
# Single-flight dedup (in-process, gated execution)
# --------------------------------------------------------------------- #

def test_followers_attach_to_inflight_job_and_share_its_payload(tiny_result):
    release = threading.Event()
    executions = []

    def gated(job, attempt):
        executions.append(job.key())
        assert release.wait(scaled(10.0)), "gate never released"
        return tiny_result

    service = SimService(execute=gated)
    try:
        job = _job("flight")
        t1, (key,) = service.submit([job])
        _spin_until(lambda: executions, message="first execution started")
        # Two followers arrive while the job is mid-flight: both attach,
        # neither enqueues a second execution.
        t2, keys2 = service.submit([job])
        t3, keys3 = service.submit([_job("flight")])  # equal by content
        assert keys2 == keys3 == [key]
        assert len({t1, t2, t3}) == 3       # distinct tickets, one entry
        assert service.attached == 2
        assert service.job_status(key)["status"] == "running"
        release.set()
        _spin_until(lambda: service.job_status(key)["status"] == "done",
                    message="job completion")
        assert executions == [job.key()]    # exactly one execution
        docs = [service.job_status(key) for _ in range(3)]
        assert all(canonical_json(d) == canonical_json(docs[0])
                   for d in docs)
    finally:
        release.set()
        service.close()


def test_cache_hit_completes_submission_without_executing(tmp_path,
                                                          tiny_result):
    job = _job("warm")
    ResultCache(tmp_path).put(job, tiny_result)
    service = SimService(cache_dir=tmp_path,
                         execute=lambda j, a: pytest.fail(
                             "cache hit must not execute"))
    try:
        _, (key,) = service.submit([job])
        doc = service.job_status(key)
        assert doc["status"] == "done" and doc["cached"]
        assert doc["result"]["summary"] == tiny_result.as_dict()
        stats = service.stats()
        assert stats["cache_hits"] == 1 and stats["executed"] == 0
    finally:
        service.close()


def test_failed_job_keeps_error_and_attempt_count():
    def explode(job, attempt):
        raise RuntimeError(f"boom on attempt {attempt}")

    service = SimService(execute=explode,
                         retry_policy=RetryPolicy(max_attempts=2))
    try:
        _, (key,) = service.submit([_job("doomed")])
        _spin_until(lambda: service.job_status(key)["status"]
                    in TERMINAL_STATES, message="terminal state")
        doc = service.job_status(key)
        assert doc["status"] == "failed"
        assert doc["attempts"] == 2
        assert "RuntimeError: boom on attempt 2" in doc["error"]
        assert "result" not in doc
    finally:
        service.close()


def test_flaky_job_recovers_on_retry(tiny_result):
    def flaky(job, attempt):
        if attempt == 1:
            raise OSError("transient")
        return tiny_result

    service = SimService(execute=flaky,
                         retry_policy=RetryPolicy(max_attempts=3))
    try:
        _, (key,) = service.submit([_job("flaky")])
        _spin_until(lambda: service.job_status(key)["status"]
                    in TERMINAL_STATES, message="terminal state")
        doc = service.job_status(key)
        assert doc["status"] == "done" and doc["attempts"] == 2
    finally:
        service.close()


def test_hung_job_times_out_and_late_result_is_discarded(tmp_path,
                                                         tiny_result):
    release = threading.Event()

    def hang(job, attempt):
        assert release.wait(scaled(30.0)), "gate never released"
        return tiny_result

    budget = scaled(0.2)
    service = SimService(cache_dir=tmp_path, execute=hang,
                         retry_policy=RetryPolicy(max_attempts=1,
                                                  timeout=budget))
    try:
        job = _job("stuck")
        _, (key,) = service.submit([job])
        # The deadline is enforced lazily: polling observes the breach.
        _spin_until(lambda: service.job_status(key)["status"] == "timeout",
                    budget=30.0, message="timeout observation")
        doc = service.job_status(key)
        assert f"{budget:g}s" in doc["error"]
        # Now un-hang the worker: its late result must be discarded —
        # the entry stays timed out and nothing is checkpointed.
        release.set()
        _spin_until(lambda: service.executed == 1,
                    message="late execution return")
        assert service.job_status(key)["status"] == "timeout"
        assert ResultCache(tmp_path).get(job) is None
        assert service.wait_for([key], timeout=scaled(5.0))
    finally:
        release.set()
        service.close()


def test_wait_for_reports_pending_then_completion(tiny_result):
    release = threading.Event()
    service = SimService(
        execute=lambda j, a: (release.wait(scaled(10.0)), tiny_result)[1])
    try:
        _, keys = service.submit(_jobs(2))
        assert not service.wait_for(keys, timeout=scaled(0.1))
        release.set()
        assert service.wait_for(keys, timeout=scaled(10.0))
        assert service.stats()["states"] == {"done": 2}
    finally:
        release.set()
        service.close()


# --------------------------------------------------------------------- #
# The HTTP daemon
# --------------------------------------------------------------------- #

@pytest.fixture()
def live_daemon(tmp_path):
    service = SimService(cache_dir=tmp_path / "cache", max_workers=2)
    daemon = ServiceDaemon(service)
    thread = daemon.start()
    yield daemon
    daemon.shutdown()
    thread.join(timeout=scaled(10.0))
    daemon.close()


def test_http_health_stats_and_error_paths(live_daemon):
    client = ServiceClient(live_daemon.url, timeout=scaled(30.0))
    health = client.health()
    assert health["status"] == "ok"
    assert client.stats()["jobs"] == 0
    with pytest.raises(ServiceError) as excinfo:
        client.job("no-such-key")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client.ticket("t999999")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", "/v1/nope")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/v1/jobs", body={"jobs": []})
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", "/v1/jobs/x?wait=never")
    assert excinfo.value.status == 400


def test_http_submit_longpoll_stream_and_ticket(live_daemon):
    client = ServiceClient(live_daemon.url, timeout=scaled(60.0))
    jobs = _jobs(3, accesses=350)
    submission = client.submit(jobs=jobs)
    assert len(submission.keys) == 3

    final = client.wait(submission, timeout=scaled(120.0))
    assert final["complete"] and final["terminal"] == final["total"] == 3
    assert {doc["status"] for doc in final["jobs"]} == {"done"}
    assert all("result" in doc for doc in final["jobs"])

    # Long-polling one job returns it done with the result inline.
    doc = client.job(submission.keys[0], wait=scaled(5.0))
    assert doc["status"] == "done"
    assert doc["result"]["summary"]["workload"] == "ligra.pagerank"

    # The stream replays one terminal JSONL document per job.
    streamed = list(client.stream(submission))
    assert sorted(d["key"] for d in streamed) == sorted(submission.keys)
    assert {d["status"] for d in streamed} == {"done"}

    # A duplicate submission attaches; nothing executes twice.
    again = client.submit(jobs=jobs)
    assert again.keys == submission.keys
    detail = client.stats(detail=True)
    assert detail["executed"] == 3 and detail["attached"] == 3
    assert set(detail["executed_per_key"].values()) == {1}


def test_eight_concurrent_clients_execute_each_key_exactly_once(live_daemon):
    """The headline dedup claim, end to end over real HTTP.

    Eight clients submit overlapping slices of a six-job universe
    concurrently; the service must execute each unique key exactly once
    and serve every client byte-identical payloads.
    """
    universe = _jobs(6, accesses=300)
    slices = [[universe[j] for j in range(len(universe))
               if (i + j) % 2 == 0 or j % 3 == i % 3]
              for i in range(8)]  # every slice overlaps its neighbours
    raw_by_client = [None] * 8
    errors = []

    def one_client(i):
        try:
            client = ServiceClient(live_daemon.url, timeout=scaled(60.0))
            submission = client.submit(jobs=slices[i])
            client.wait(submission, timeout=scaled(120.0))
            raw_by_client[i] = {key: client.job_raw(key)
                                for key in submission.keys}
        except Exception as exc:  # surfaced after the join
            errors.append((i, exc))

    threads = [threading.Thread(target=one_client, args=(i,))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=scaled(180.0))
    assert not errors, f"client failures: {errors}"
    assert all(not t.is_alive() for t in threads)

    client = ServiceClient(live_daemon.url, timeout=scaled(30.0))
    detail = client.stats(detail=True)
    submitted = sum(len(s) for s in slices)
    assert detail["jobs"] == 6
    assert detail["executed"] == 6           # exactly once per unique key
    assert set(detail["executed_per_key"].values()) == {1}
    assert detail["attached"] == submitted - 6

    # Byte-identity: every client that saw a key saw the same bytes.
    reference = {}
    for raw in raw_by_client:
        for key, body in raw.items():
            reference.setdefault(key, body)
            assert body == reference[key]
    assert len(reference) == 6


def test_http_shutdown_endpoint_stops_the_daemon(tmp_path):
    service = SimService(cache_dir=tmp_path)
    daemon = ServiceDaemon(service)
    thread = daemon.start()
    client = ServiceClient(daemon.url, timeout=scaled(30.0))
    assert client.shutdown()["status"] == "shutting-down"
    thread.join(timeout=scaled(10.0))
    assert not thread.is_alive()
    daemon.close()


# --------------------------------------------------------------------- #
# Crash-restart through the CLI (kill -9 the daemon mid-sweep)
# --------------------------------------------------------------------- #

def _cli_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop(FAULTS_ENV, None)
    env.update(extra)
    return env


def _start_daemon(tmp_path, cache_dir, tag, **extra_env):
    port_file = tmp_path / f"port-{tag}"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--port-file", str(port_file), "--cache-dir", str(cache_dir),
         "--max-workers", "1"],
        env=_cli_env(**extra_env),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + scaled(60.0)
    while not port_file.exists():
        if proc.poll() is not None:
            pytest.fail(f"daemon {tag} died during startup")
        if time.monotonic() > deadline:
            proc.kill()
            pytest.fail(f"daemon {tag} never published its port")
        time.sleep(0.05)
    port = int(port_file.read_text().strip())
    return proc, f"http://127.0.0.1:{port}"


WORKLOADS = "spec06.stencil,ligra.pagerank,cvp.server_int"


def test_daemon_kill9_restart_serves_checkpoints_and_reruns_rest(tmp_path):
    """Satellite 2: kill -9 mid-sweep, restart, resubmit.

    A single-worker daemon executes three jobs in submission order with
    the LAST one hanging forever: the first two checkpoint to the
    shared cache, then the daemon is kill -9'd.  A restarted daemon on
    the same cache directory must serve those two from checksummed
    checkpoints (``cache_hits``) and re-execute only the lost one.
    """
    cache_dir = tmp_path / "cache"
    jobs = [SimJob(config=SystemConfig.baseline("pythia"), workload=name,
                   num_accesses=900)
            for name in WORKLOADS.split(",")]
    plan = FaultPlan(faults={jobs[-1].key(): FaultSpec(kind="hang",
                                                       hang_s=3600.0)})

    proc, url = _start_daemon(tmp_path, cache_dir, "victim",
                              **{FAULTS_ENV: plan.to_json()})
    try:
        submit = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "--server", url,
             "--workload", WORKLOADS, "--accesses", "900", "--no-wait"],
            env=_cli_env(), capture_output=True, timeout=scaled(120.0))
        assert submit.returncode == 0, submit.stderr.decode()
        # FIFO single worker: wait until the two pre-hang jobs are
        # checkpointed, then kill -9 while the third hangs.
        deadline = time.monotonic() + scaled(240.0)
        while len(list(cache_dir.glob("*.pkl"))) < 2:
            if proc.poll() is not None:
                pytest.fail("daemon exited before it could be killed")
            if time.monotonic() > deadline:
                pytest.fail("first two jobs never checkpointed")
            time.sleep(0.05)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=scaled(60.0))
    assert len(list(cache_dir.glob("*.pkl"))) == 2

    # Fault-free restart over the same cache: resubmission completes,
    # serving the survivors from the cache and executing only the rest.
    proc, url = _start_daemon(tmp_path, cache_dir, "restarted")
    try:
        out = tmp_path / "resubmit.json"
        resubmit = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "--server", url,
             "--workload", WORKLOADS, "--accesses", "900",
             "--wait-timeout", str(scaled(240.0)), "--output", str(out)],
            env=_cli_env(), capture_output=True, timeout=scaled(300.0))
        assert resubmit.returncode == 0, resubmit.stderr.decode()
        doc = json.loads(out.read_text())
        assert doc["complete"] and doc["total"] == 3
        cached = [j["cached"] for j in doc["jobs"]]
        assert cached == [True, True, False]
        stats = ServiceClient(url, timeout=scaled(30.0)).stats()
        assert stats["cache_hits"] == 2
        assert stats["executed"] == 1       # only the killed job re-ran
        assert len(list(cache_dir.glob("*.pkl"))) == 3
        ServiceClient(url, timeout=scaled(30.0)).shutdown()
        proc.wait(timeout=scaled(60.0))
        assert proc.returncode == 0         # clean shutdown
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=scaled(60.0))


# --------------------------------------------------------------------- #
# Load driver
# --------------------------------------------------------------------- #

def test_percentile_interpolates_linearly():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 100) == 40.0
    assert percentile(values, 50) == 25.0
    assert percentile([7.0], 99) == 7.0
    assert percentile([3.0, 1.0], 50) == 2.0    # unsorted input
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile(values, 101)


def test_synthetic_engine_is_deterministic_and_overlapping():
    def harvest(seed):
        engine = SyntheticReqGenEngine(num_requests=10, accesses=300,
                                       jobs_per_req=2, seed=seed)
        return [req.jobs for req in engine.reqs()]

    assert harvest(7) == harvest(7)             # same seed, same traffic
    assert harvest(7) != harvest(8)
    engine = SyntheticReqGenEngine(num_requests=10, accesses=300,
                                   jobs_per_req=2, seed=7)
    keys = {SimJob.from_dict(job).key()
            for req in engine.reqs() for job in req.jobs}
    assert len(keys) <= len(engine.universe)    # bounded universe ...
    assert len(keys) < 20                       # ... so overlap happened


def test_trace_record_replay_round_trip(tmp_path):
    engine = SyntheticReqGenEngine(num_requests=5, accesses=300, seed=3)
    trace_path = tmp_path / "reqs.jsonl"
    assert record_trace(engine.reqs(), trace_path) == 5
    replayed = TraceReplayReqGenEngine(trace_path)
    assert ([req.jobs for req in replayed.reqs()]
            == [req.jobs for req in engine.reqs()])


def test_driver_workload_validates_its_arrival_model():
    engine = SyntheticReqGenEngine(num_requests=1)
    with pytest.raises(ValueError):
        DriverWorkload(engine=engine, clients=0)
    with pytest.raises(ValueError):
        DriverWorkload(engine=engine, mode="bursty")
    with pytest.raises(ValueError):
        DriverWorkload(engine=engine, mode="open")   # open needs a rate
    DriverWorkload(engine=engine, mode="open", rate=5.0)


def test_closed_loop_driver_measures_exactly_once_execution(live_daemon):
    engine = SyntheticReqGenEngine(num_requests=8, accesses=350,
                                   jobs_per_req=2, seed=11)
    workload = DriverWorkload(engine=engine, clients=4, mode="closed")
    stats = LoadDriver(live_daemon.url, workload,
                       request_timeout=scaled(120.0)).run()
    assert stats.requests == 8 and stats.failed == 0
    assert stats.server["executed_delta"] == stats.unique_keys
    assert stats.server["attached_delta"] + stats.unique_keys == 16
    assert stats.latency_p50_s <= stats.latency_p99_s <= stats.latency_max_s
    doc = stats.to_dict()
    assert doc["ok"] == 8 and doc["server"]["cache_hits_delta"] == 0


def test_open_loop_driver_respects_its_schedule(live_daemon):
    engine = SyntheticReqGenEngine(num_requests=4, accesses=300,
                                   jobs_per_req=1, seed=2)
    workload = DriverWorkload(engine=engine, clients=2, mode="open",
                              rate=50.0)
    stats = LoadDriver(live_daemon.url, workload,
                       request_timeout=scaled(120.0)).run()
    assert stats.ok == 4
    assert stats.elapsed_s >= 3 / 50.0      # last arrival offset waited


def test_driver_cli_reports_stats_json(live_daemon, tmp_path, capsys):
    out = tmp_path / "stats.json"
    rc = driver_main(["--server", live_daemon.url, "--clients", "2",
                      "--requests", "4", "--accesses", "300",
                      "--jobs-per-req", "1", "--seed", "5",
                      "--timeout", str(scaled(120.0)),
                      "--output", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["requests"] == 4 and doc["failed"] == 0
    assert doc["server"]["executed_delta"] == doc["unique_keys"]
    assert "p99" in doc["latency_s"]
    assert "4 request(s), 4 ok" in capsys.readouterr().err
