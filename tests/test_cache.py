"""Unit tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache, CacheConfig


def make_cache(size_kb=4, ways=4, latency=5, replacement="lru"):
    return Cache(CacheConfig(name="test", size_bytes=size_kb * 1024, ways=ways,
                             latency=latency, replacement=replacement))


def test_config_validation_rejects_bad_sizes():
    with pytest.raises(ValueError):
        CacheConfig(name="bad", size_bytes=0, ways=4, latency=1).validate()
    with pytest.raises(ValueError):
        CacheConfig(name="bad", size_bytes=1000, ways=3, latency=1).validate()
    with pytest.raises(ValueError):
        CacheConfig(name="bad", size_bytes=4096, ways=4, latency=-1).validate()


def test_miss_then_fill_then_hit():
    cache = make_cache()
    result = cache.access(0x1000, pc=0x400)
    assert not result.hit
    cache.fill(0x1000, pc=0x400)
    assert cache.probe(0x1000)
    result = cache.access(0x1000, pc=0x400)
    assert result.hit
    assert result.latency == cache.latency


def test_same_block_different_offsets_hit():
    cache = make_cache()
    cache.fill(0x2000, pc=0x400)
    assert cache.access(0x2010, pc=0x400).hit
    assert cache.access(0x203F, pc=0x400).hit


def test_eviction_on_capacity():
    cache = make_cache(size_kb=1, ways=2)  # 8 sets x 2 ways = 16 blocks
    # Fill three blocks mapping to the same set; one must be evicted.
    addresses = [0x0, 8 * 64, 16 * 64]
    for address in addresses:
        cache.fill(address, pc=0x400)
    present = [cache.probe(address) for address in addresses]
    assert present.count(True) == 2
    assert cache.stats.evictions == 1


def test_dirty_eviction_returns_writeback():
    cache = make_cache(size_kb=1, ways=1)  # 16 sets x 1 way
    cache.fill(0x0, pc=0x400, dirty=True)
    writeback = cache.fill(16 * 64, pc=0x400)  # maps to the same set 0
    assert writeback == 0x0
    assert cache.stats.writebacks == 1


def test_clean_eviction_has_no_writeback():
    cache = make_cache(size_kb=1, ways=1)
    cache.fill(0x0, pc=0x400, dirty=False)
    assert cache.fill(16 * 64, pc=0x400) is None


def test_store_marks_block_dirty():
    cache = make_cache(size_kb=1, ways=1)
    cache.fill(0x0, pc=0x400)
    cache.access(0x0, pc=0x400, is_write=True)
    assert cache.fill(16 * 64, pc=0x400) == 0x0


def test_invalidate():
    cache = make_cache()
    cache.fill(0x3000, pc=0x400)
    assert cache.invalidate(0x3000)
    assert not cache.probe(0x3000)
    assert not cache.invalidate(0x3000)


def test_mshr_merge_returns_ready_cycle():
    cache = make_cache()
    cache.record_miss(0x4000, ready_cycle=500)
    assert cache.outstanding_miss(0x4000, cycle=100) == 500
    assert cache.outstanding_miss_probe(0x4000, cycle=100)
    # After the fill completes the MSHR entry is released.
    assert cache.outstanding_miss(0x4000, cycle=600) is None
    assert not cache.outstanding_miss_probe(0x4000, cycle=600)


def test_useful_prefetch_accounting():
    cache = make_cache()
    cache.fill(0x5000, pc=0x400, is_prefetch=True)
    assert cache.stats.prefetch_fills == 1
    cache.access(0x5000, pc=0x400)
    assert cache.stats.useful_prefetches == 1
    # A second hit must not double count usefulness.
    cache.access(0x5000, pc=0x400)
    assert cache.stats.useful_prefetches == 1


def test_hit_rate_statistics():
    cache = make_cache()
    cache.access(0x100, pc=1)
    cache.fill(0x100, pc=1)
    cache.access(0x100, pc=1)
    assert cache.stats.demand_accesses == 2
    assert cache.stats.demand_hits == 1
    assert cache.stats.demand_misses == 1
    assert cache.stats.demand_hit_rate == pytest.approx(0.5)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
def test_resident_blocks_never_exceed_capacity(block_numbers):
    cache = make_cache(size_kb=2, ways=2)
    for block in block_numbers:
        address = block * 64
        if not cache.access(address, pc=block & 0xFFF).hit:
            cache.fill(address, pc=block & 0xFFF)
    assert cache.resident_blocks() <= cache.capacity_blocks


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200),
       st.sampled_from(["lru", "srrip", "ship", "random"]))
def test_fill_then_probe_holds_for_every_policy(blocks, policy):
    cache = Cache(CacheConfig(name="prop", size_bytes=8 * 1024, ways=4, latency=1,
                              replacement=policy))
    for block in blocks:
        cache.fill(block * 64, pc=block)
        # The block just filled must be resident immediately afterwards.
        assert cache.probe(block * 64)
