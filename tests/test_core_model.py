"""Unit tests for the out-of-order core timing model."""

import pytest

from repro.cpu.core import CoreConfig, OutOfOrderCore
from repro.memory.hierarchy import CacheHierarchy
from repro.workloads.trace import MemoryAccess, Trace


def make_core(rob_size=512, hermes=None):
    hierarchy = CacheHierarchy()
    core = OutOfOrderCore(hierarchy, hermes=hermes,
                          config=CoreConfig(rob_size=rob_size))
    return core, hierarchy


def make_trace(accesses):
    return Trace(name="unit", category="TEST", accesses=accesses)


def hit_heavy_trace(count=200):
    """All loads to one block: one cold miss then L1 hits."""
    return make_trace([MemoryAccess(pc=0x400, address=0x1000, nonmem_before=5)
                       for _ in range(count)])


def test_config_validation():
    with pytest.raises(ValueError):
        CoreConfig(rob_size=0).validate()
    with pytest.raises(ValueError):
        CoreConfig(fetch_width=0).validate()
    with pytest.raises(ValueError):
        CoreConfig(load_queue_size=0).validate()


def test_instruction_accounting():
    core, _ = make_core()
    stats = core.run(hit_heavy_trace(100))
    assert stats.memory_instructions == 100
    assert stats.loads == 100
    assert stats.instructions == 100 * 6          # 5 ALU ops + the load each
    assert stats.cycles > 0
    assert stats.ipc > 0


def test_step_requires_begin():
    core, _ = make_core()
    with pytest.raises(RuntimeError):
        core.step(MemoryAccess(pc=0x400, address=0x1000))


def test_hit_heavy_trace_reaches_near_fetch_width_ipc():
    core, _ = make_core()
    stats = core.run(hit_heavy_trace(500))
    assert stats.ipc > 0.7 * core.config.fetch_width


def test_offchip_loads_reduce_ipc():
    import random
    rng = random.Random(3)
    cold = make_trace([MemoryAccess(pc=0x800, address=rng.randrange(1 << 24) * 64,
                                    nonmem_before=5)
                       for _ in range(500)])
    hit_core, _ = make_core()
    cold_core, _ = make_core()
    hits = hit_core.run(hit_heavy_trace(500))
    misses = cold_core.run(cold)
    assert misses.ipc < hits.ipc
    assert misses.offchip_loads > 0
    assert misses.offchip_loads == misses.blocking_offchip_loads + \
        misses.nonblocking_offchip_loads


def test_larger_rob_tolerates_more_latency():
    import random

    def cold_trace():
        rng = random.Random(7)
        return make_trace([MemoryAccess(pc=0x800, address=rng.randrange(1 << 24) * 64,
                                        nonmem_before=10)
                           for _ in range(400)])

    small_core, _ = make_core(rob_size=64)
    large_core, _ = make_core(rob_size=1024)
    small = small_core.run(cold_trace())
    large = large_core.run(cold_trace())
    assert large.ipc >= small.ipc


def test_dependent_loads_serialise():
    import random
    rng = random.Random(9)
    independent = make_trace([MemoryAccess(pc=0x800, address=rng.randrange(1 << 24) * 64,
                                           nonmem_before=3)
                              for _ in range(300)])
    rng = random.Random(9)
    dependent = make_trace([MemoryAccess(pc=0x800, address=rng.randrange(1 << 24) * 64,
                                         nonmem_before=3, depends_on_previous_load=True)
                            for _ in range(300)])
    independent_core, _ = make_core()
    dependent_core, _ = make_core()
    free = independent_core.run(independent)
    chained = dependent_core.run(dependent)
    assert chained.ipc < free.ipc


def test_stores_do_not_block_retirement():
    stores = make_trace([MemoryAccess(pc=0x400, address=index * 4096, is_load=False,
                                      nonmem_before=5)
                         for index in range(300)])
    core, _ = make_core()
    stats = core.run(stores)
    assert stats.stores == 300
    assert stats.loads == 0
    assert stats.ipc > 1.0


def test_stall_cycle_attribution_sums():
    import random
    rng = random.Random(11)
    trace = make_trace([MemoryAccess(pc=0x800, address=rng.randrange(1 << 24) * 64,
                                     nonmem_before=2)
                        for _ in range(600)])
    core, _ = make_core(rob_size=128)
    stats = core.run(trace)
    assert stats.stall_cycles_offchip >= stats.stall_cycles_offchip_onchip_portion >= 0
    if stats.blocking_offchip_loads:
        assert stats.average_offchip_stall > 0


def test_as_dict_contains_key_metrics():
    core, _ = make_core()
    stats = core.run(hit_heavy_trace(50))
    data = stats.as_dict()
    for key in ("ipc", "cycles", "instructions", "offchip_loads",
                "blocking_offchip_loads", "stall_cycles_offchip"):
        assert key in data
