"""Smoke tests of the unified ``python -m repro`` CLI via subprocess."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def run_cli(*args: str, stdin_data: bytes = b"",
            expect_rc: int = 0,
            extra_env: dict = None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    if extra_env:
        env.update(extra_env)
    proc = subprocess.run([sys.executable, "-m", "repro", *args],
                          input=stdin_data, capture_output=True, env=env,
                          timeout=300)
    assert proc.returncode == expect_rc, (
        f"rc={proc.returncode}, stderr:\n{proc.stderr.decode()}")
    return proc


def test_help_screens():
    for args in ([], ["run"], ["sweep"], ["trace"], ["trace", "generate"],
                 ["trace", "convert"], ["trace", "inspect"], ["bench"],
                 ["serve"], ["submit"]):
        proc = run_cli(*args, "--help")
        assert b"usage:" in proc.stdout.lower()


def test_run_workload_emits_stats_json(tmp_path):
    out = tmp_path / "stats.json"
    run_cli("run", "--workload", "ligra.bfs", "--accesses", "1200",
            "--predictor", "popet", "--output", str(out))
    payload = json.loads(out.read_text())
    assert payload["summary"]["workload"] == "ligra.bfs"
    assert payload["summary"]["instructions"] > 0
    assert "core" in payload["detail"]


def test_trace_generate_convert_inspect_run(tmp_path):
    jsonl = tmp_path / "t.jsonl.gz"
    binary = tmp_path / "t.bin"
    run_cli("trace", "generate", "--workload", "spec06.stencil",
            "--accesses", "1000", "--out", str(jsonl))
    run_cli("trace", "convert", str(jsonl), str(binary))

    inspect_out = tmp_path / "inspect.json"
    run_cli("trace", "inspect", str(binary), "--output", str(inspect_out))
    summary = json.loads(inspect_out.read_text())
    assert summary["memory_instructions"] == 1000
    assert summary["header"]["name"] == "spec06.stencil"

    run_out = tmp_path / "run.json"
    run_cli("run", "--trace", str(binary), "--stream",
            "--output", str(run_out))
    payload = json.loads(run_out.read_text())
    assert payload["summary"]["workload"] == "spec06.stencil"


def test_pipe_generate_into_run_matches_api(tmp_path):
    """`trace generate ... | run --trace -` == the in-process API."""
    api_out = tmp_path / "api.json"
    run_cli("run", "--workload", "ligra.bfs", "--accesses", "1000",
            "--predictor", "popet", "--output", str(api_out))

    generated = run_cli("trace", "generate", "--workload", "ligra.bfs",
                        "--accesses", "1000").stdout
    pipe_out = tmp_path / "pipe.json"
    run_cli("run", "--trace", "-", "--predictor", "popet",
            "--output", str(pipe_out), stdin_data=generated)

    assert json.loads(api_out.read_text()) == json.loads(pipe_out.read_text())


def test_sweep_matrix_with_cache(tmp_path):
    out = tmp_path / "sweep.json"
    cache = tmp_path / "cache"
    args = ("sweep", "--workloads", "ligra.bfs,spec06.stencil",
            "--prefetchers", "none,pythia", "--predictors", "none",
            "--accesses", "800", "--cache-dir", str(cache),
            "--output", str(out))
    run_cli(*args)
    payload = json.loads(out.read_text())
    assert payload["jobs"] == 4
    assert {row["config"] for row in payload["rows"]} == {"none", "pythia"}
    cached = len(list(cache.glob("*.pkl")))
    assert cached == 4
    # Re-run is served from the cache and produces the same rows.
    run_cli(*args)
    assert json.loads(out.read_text()) == payload


def test_sweep_figure_runner(tmp_path):
    out = tmp_path / "fig.json"
    run_cli("sweep", "--figure", "table3", "--output", str(out))
    payload = json.loads(out.read_text())
    assert payload["figure"] == "table3"
    assert payload["result"]


def test_unknown_workload_fails_cleanly():
    proc = run_cli("run", "--workload", "no.such.workload", expect_rc=2)
    assert b"unknown workload" in proc.stderr


def test_bench_forwards_option_like_arguments():
    """`repro bench --skip-figure ...` must reach repro.perf without a
    `--` separator (argparse REMAINDER cannot capture leading options)."""
    proc = run_cli("bench", "--help")
    assert b"repro.perf" in proc.stdout


def test_sweep_figure_rejects_matrix_flags():
    proc = run_cli("sweep", "--figure", "table3", "--predictors", "popet",
                   expect_rc=2)
    assert b"only apply to ad-hoc matrices" in proc.stderr


# --------------------------------------------------------------------- #
# Declarative config & spec-driven sweeps
# --------------------------------------------------------------------- #

def test_config_dump_load_round_trip(tmp_path):
    """`config dump` output reloads (and re-dumps) byte-identically."""
    first = tmp_path / "cfg.toml"
    second = tmp_path / "cfg2.toml"
    run_cli("config", "dump", "--predictor", "popet",
            "--set", "core.rob_size=256", "--output", str(first))
    run_cli("config", "dump", "--config", str(first), "--output", str(second))
    assert first.read_text() == second.read_text()
    proc = run_cli("config", "validate", str(first))
    assert b"ok" in proc.stdout

    json_out = tmp_path / "cfg.json"
    run_cli("config", "dump", "--config", str(first),
            "--output", str(json_out))
    payload = json.loads(json_out.read_text())
    assert payload["system"]["core"]["rob_size"] == 256


def test_run_with_config_file_matches_flags(tmp_path):
    """--config file + --set reproduces the flag-built run exactly."""
    flag_out = tmp_path / "flags.json"
    run_cli("run", "--workload", "ligra.bfs", "--accesses", "900",
            "--predictor", "popet", "--output", str(flag_out))

    cfg = tmp_path / "cfg.toml"
    run_cli("config", "dump", "--predictor", "popet", "--output", str(cfg))
    file_out = tmp_path / "file.json"
    run_cli("run", "--workload", "ligra.bfs", "--accesses", "900",
            "--config", str(cfg), "--output", str(file_out))
    assert json.loads(flag_out.read_text()) == json.loads(file_out.read_text())


def test_run_config_conflicts_with_shape_flags(tmp_path):
    cfg = tmp_path / "cfg.toml"
    run_cli("config", "dump", "--output", str(cfg))
    proc = run_cli("run", "--workload", "ligra.bfs", "--config", str(cfg),
                   "--prefetcher", "spp", expect_rc=2)
    assert b"cannot be combined with --config" in proc.stderr


def test_config_paths_lists_override_keys():
    proc = run_cli("config", "paths")
    assert b"core.rob_size" in proc.stdout
    assert b"hierarchy.llc.size_bytes" in proc.stdout


def test_unknown_prefetcher_lists_available_names():
    proc = run_cli("run", "--workload", "ligra.bfs", "--accesses", "500",
                   "--prefetcher", "warp-drive", expect_rc=2)
    assert b"unknown prefetcher" in proc.stderr
    assert b"pythia" in proc.stderr
    assert b"Traceback" not in proc.stderr


def test_bad_override_fails_cleanly():
    proc = run_cli("run", "--workload", "ligra.bfs",
                   "--set", "core.rob_sizes=1", expect_rc=2)
    assert b"unknown config key" in proc.stderr
    assert b"rob_size" in proc.stderr


def test_sweep_spec_runs_and_caches(tmp_path):
    spec = tmp_path / "spec.toml"
    spec.write_text("""
spec_version = 1
name = "cli-spec"
accesses = 600
workloads = ["spec06.stencil"]

[base]
prefetcher = "pythia"

[[axes]]
name = "system"
[[axes.points]]
label = "pythia"
[[axes.points]]
label = "pythia+hermes"
[axes.points.set]
offchip_predictor = "popet"
"hermes.enabled" = true
""")
    out = tmp_path / "out.json"
    cache = tmp_path / "cache"
    args = ("sweep", "--spec", str(spec), "--cache-dir", str(cache),
            "--output", str(out))
    run_cli(*args)
    payload = json.loads(out.read_text())
    assert payload["spec"] == "cli-spec"
    assert payload["jobs"] == 2
    assert {row["config"] for row in payload["rows"]} == {
        "pythia", "pythia+hermes"}
    assert len(list(cache.glob("*.pkl"))) == 2
    run_cli(*args)
    assert json.loads(out.read_text()) == payload


# --------------------------------------------------------------------- #
# The --outcomes ledger
# --------------------------------------------------------------------- #

def test_sweep_outcomes_ledger_on_success(tmp_path):
    out = tmp_path / "out.json"
    outcomes = tmp_path / "outcomes.json"
    run_cli("sweep", "--workloads", "ligra.bfs,spec06.stencil",
            "--accesses", "700", "--output", str(out),
            "--outcomes", str(outcomes))
    doc = json.loads(outcomes.read_text())
    assert doc["jobs"] == 2 and doc["ok"] == 2 and doc["failed"] == 0
    assert all(o["status"] == "ok" and o["attempts"] == 1
               for o in doc["outcomes"])
    assert json.loads(out.read_text())["jobs"] == 2


def test_sweep_outcomes_ledger_written_even_on_failure(tmp_path):
    """`--outcomes FILE` lands on disk when the sweep exits 3.

    Under the default --on-error raise the sweep output is aborted, but
    the outcome ledger is most useful exactly then — it names the jobs
    that exhausted their budget — so it must be written before the
    error propagates.
    """
    from repro.runner import FaultPlan, FaultSpec, SimJob
    from repro.runner.faults import FAULTS_ENV
    from repro.sim.config import SystemConfig

    # Reconstruct the job the ad-hoc matrix will build for ligra.bfs so
    # the fault plan can target it by content key.
    doomed = SimJob(config=SystemConfig.baseline("pythia"),
                    workload="ligra.bfs", num_accesses=700)
    plan = FaultPlan(faults={doomed.key(): FaultSpec(kind="raise")})

    out = tmp_path / "out.json"
    outcomes = tmp_path / "outcomes.json"
    proc = run_cli("sweep", "--workloads", "ligra.bfs,spec06.stencil",
                   "--accesses", "700", "--output", str(out),
                   "--outcomes", str(outcomes),
                   extra_env={FAULTS_ENV: plan.to_json()},
                   expect_rc=3)
    assert not out.exists()          # the sweep output was aborted ...
    doc = json.loads(outcomes.read_text())  # ... the ledger was not
    assert doc["jobs"] == 2 and doc["failed"] == 1 and doc["ok"] == 1
    failed = [o for o in doc["outcomes"] if o["status"] == "failed"]
    assert len(failed) == 1 and "FaultError" in failed[0]["error"]
    assert b"1 failed" in proc.stderr


def test_sweep_spec_rejects_matrix_flags(tmp_path):
    spec = tmp_path / "spec.toml"
    spec.write_text("spec_version = 1\nname = \"x\"\n"
                    "workloads = [\"ligra.bfs\"]\n")
    proc = run_cli("sweep", "--spec", str(spec), "--prefetchers", "spp",
                   expect_rc=2)
    assert b"only apply to ad-hoc matrices" in proc.stderr
