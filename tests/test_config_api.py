"""Tests for the declarative config & experiment-spec API.

Covers the round-trip contract (``from_dict(to_dict(cfg)) == cfg``) for
every config dataclass, strict unknown-key/bad-type rejection, the
dotted-path override layer, TOML/JSON file I/O (including the fallback
TOML parser), spec -> job-matrix expansion, cache-key stability across a
serialize/deserialize cycle, and the acceptance criterion that a
TOML-spec sweep is bit-identical to the equivalent in-Python
``run_matrix`` call.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import (
    CONFIG_SCHEMA_VERSION,
    ConfigError,
    apply_overrides,
    parse_override,
    parse_override_value,
)
from repro.config.schema import config_field_paths
from repro.config.toml_compat import (
    TOMLError,
    dumps_toml,
    loads_toml,
    loads_toml_subset,
)
from repro.core.hermes import HermesConfig
from repro.cpu.core import CoreConfig
from repro.dram.config import DRAMConfig
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.runner import ExperimentSpec, JobRunner, ResultCache, SimJob
from repro.runner.spec import Axis, AxisPoint
from repro.sim.config import SystemConfig

#: One representative non-default instance per config dataclass.
SAMPLE_CONFIGS = [
    CoreConfig(rob_size=256, fetch_width=4),
    CacheConfig(name="L9", size_bytes=1 << 16, ways=4, latency=9,
                mshrs=8, replacement="srrip"),
    HierarchyConfig(llc=CacheConfig(name="LLC", size_bytes=1 << 21, ways=16,
                                    latency=40, replacement="lru")),
    DRAMConfig(channels=2, transfer_rate_mtps=1600, trcd_ns=15.0),
    HermesConfig(enabled=True, issue_latency=18),
    SystemConfig.with_hermes("popet", prefetcher="spp", optimistic=False),
    SystemConfig.no_prefetching(),
    SystemConfig(),
]


# --------------------------------------------------------------------- #
# Round-trip property
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("config", SAMPLE_CONFIGS,
                         ids=lambda c: type(c).__name__)
def test_dict_round_trip_is_identity(config):
    data = config.to_dict()
    rebuilt = type(config).from_dict(data)
    assert rebuilt == config
    # And the canonical form itself is stable across the cycle.
    assert rebuilt.to_dict() == data


@pytest.mark.parametrize("config", SAMPLE_CONFIGS,
                         ids=lambda c: type(c).__name__)
def test_to_dict_is_json_and_toml_representable(config):
    data = config.to_dict()
    assert json.loads(json.dumps(data)) == data


def test_nested_configs_serialize_as_tables():
    data = SystemConfig().to_dict()
    assert data["core"]["rob_size"] == 512
    assert data["hierarchy"]["llc"]["replacement"] == "ship"
    assert data["hermes"]["enabled"] is False
    assert data["offchip_predictor"] is None


# --------------------------------------------------------------------- #
# Strict rejection
# --------------------------------------------------------------------- #

def test_unknown_key_rejected_with_accepted_names():
    with pytest.raises(ConfigError, match="unknown key.*rob_sizes"):
        CoreConfig.from_dict({"rob_sizes": 128})
    with pytest.raises(ConfigError, match="accepted keys"):
        CoreConfig.from_dict({"rob_sizes": 128})


def test_unknown_nested_key_names_its_dotted_location():
    data = SystemConfig().to_dict()
    data["core"]["robsize"] = 1
    with pytest.raises(ConfigError, match="core.*robsize"):
        SystemConfig.from_dict(data)


def test_bad_types_rejected():
    with pytest.raises(ConfigError, match="expected an int"):
        CoreConfig.from_dict({"rob_size": "big"})
    # bool is a subclass of int but makes no sense for sizes.
    with pytest.raises(ConfigError, match="expected an int"):
        CoreConfig.from_dict({"rob_size": True})
    with pytest.raises(ConfigError, match="expected a string"):
        SystemConfig.from_dict({"prefetcher": 7})
    with pytest.raises(ConfigError, match="expected a bool"):
        HermesConfig.from_dict({"enabled": 1})
    with pytest.raises(ConfigError, match="expected a table"):
        SystemConfig.from_dict({"core": 512})


def test_int_widens_to_float():
    config = SystemConfig.from_dict({"warmup_fraction": 0})
    assert config.warmup_fraction == 0.0
    assert isinstance(config.warmup_fraction, float)


def test_missing_required_key_rejected():
    with pytest.raises(ConfigError, match="missing required key.*name"):
        CacheConfig.from_dict({"size_bytes": 1 << 16, "ways": 4, "latency": 5})


def test_missing_optional_keys_fall_back_to_defaults():
    config = SystemConfig.from_dict({"prefetcher": "spp"})
    assert config == SystemConfig(label="baseline", prefetcher="spp")


# --------------------------------------------------------------------- #
# Overrides
# --------------------------------------------------------------------- #

def test_apply_overrides_nested_and_functional():
    base = SystemConfig()
    out = apply_overrides(base, {"core.rob_size": 256,
                                 "hierarchy.llc.latency": 40,
                                 "offchip_predictor": "popet",
                                 "hermes.enabled": True})
    assert out.core.rob_size == 256
    assert out.hierarchy.llc.latency == 40
    assert out.hermes.enabled is True
    # The input is never mutated.
    assert base.core.rob_size == 512
    assert base.hermes.enabled is False
    # Untouched siblings are preserved.
    assert out.hierarchy.l1d == base.hierarchy.l1d


def test_apply_overrides_unknown_path_lists_accepted_keys():
    with pytest.raises(KeyError, match="core.rob_sizes.*rob_size"):
        apply_overrides(SystemConfig(), {"core.rob_sizes": 1})
    with pytest.raises(KeyError, match="unknown config key 'cores'"):
        apply_overrides(SystemConfig(), {"cores.rob_size": 1})


def test_apply_overrides_rejects_wrong_shapes():
    # Descending into a scalar field.
    with pytest.raises(KeyError, match="scalar"):
        apply_overrides(SystemConfig(), {"prefetcher.name": "x"})
    # Assigning a scalar to a sub-config.
    with pytest.raises(KeyError, match="sub-config"):
        apply_overrides(SystemConfig(), {"core": 5})
    # Type mismatches go through the same checker as from_dict.
    with pytest.raises(ConfigError, match="core.rob_size"):
        apply_overrides(SystemConfig(), {"core.rob_size": "huge"})


@pytest.mark.parametrize("token,expected", [
    ("core.rob_size=512", ("core.rob_size", 512)),
    ("warmup_fraction=0.5", ("warmup_fraction", 0.5)),
    ("hermes.enabled=true", ("hermes.enabled", True)),
    ("hermes.enabled=false", ("hermes.enabled", False)),
    ("prefetcher=pythia", ("prefetcher", "pythia")),
    ("prefetcher='none'", ("prefetcher", "none")),
    # Bare "none" is the registered no-op prefetcher's *name*;
    # only "null" clears an Optional field.
    ("prefetcher=none", ("prefetcher", "none")),
    ('label="a b"', ("label", "a b")),
    ("offchip_predictor=null", ("offchip_predictor", None)),
    ("dram.trcd_ns=12.5", ("dram.trcd_ns", 12.5)),
])
def test_parse_override_value_grammar(token, expected):
    assert parse_override(token) == expected


def test_parse_override_rejects_malformed_tokens():
    with pytest.raises(ValueError, match="key=value"):
        parse_override("core.rob_size")
    with pytest.raises(ValueError, match="empty key"):
        parse_override("=5")


def test_config_field_paths_cover_the_full_tree():
    paths = dict(config_field_paths(SystemConfig))
    assert paths["core.rob_size"] is int
    assert paths["hierarchy.llc.size_bytes"] is int
    assert paths["hermes.enabled"] is bool
    assert "label" in paths
    # Every listed path is actually settable.
    assert apply_overrides(SystemConfig(),
                           {"dram.banks_per_rank": 8}).dram.banks_per_rank == 8


# --------------------------------------------------------------------- #
# File I/O
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("suffix", ["toml", "json"])
def test_file_round_trip(tmp_path, suffix):
    config = SystemConfig.with_hermes("popet", prefetcher="pythia")
    path = tmp_path / f"system.{suffix}"
    config.to_file(path)
    assert SystemConfig.from_file(path) == config


def test_config_file_carries_schema_version(tmp_path):
    path = tmp_path / "system.toml"
    SystemConfig().to_file(path)
    text = path.read_text()
    assert f"schema_version = {CONFIG_SCHEMA_VERSION}" in text


def test_config_file_missing_version_rejected(tmp_path):
    path = tmp_path / "system.json"
    path.write_text(json.dumps({"system": SystemConfig().to_dict()}))
    with pytest.raises(ConfigError, match="schema_version"):
        SystemConfig.from_file(path)


def test_config_file_newer_version_rejected(tmp_path):
    path = tmp_path / "system.json"
    path.write_text(json.dumps({"schema_version": CONFIG_SCHEMA_VERSION + 1,
                                "system": SystemConfig().to_dict()}))
    with pytest.raises(ConfigError, match="unsupported schema_version"):
        SystemConfig.from_file(path)


def test_config_file_unknown_toplevel_key_rejected(tmp_path):
    path = tmp_path / "system.json"
    path.write_text(json.dumps({"schema_version": CONFIG_SCHEMA_VERSION,
                                "system": SystemConfig().to_dict(),
                                "extra": 1}))
    with pytest.raises(ConfigError, match="unknown top-level"):
        SystemConfig.from_file(path)


def test_unknown_extension_needs_explicit_format(tmp_path):
    with pytest.raises(ConfigError, match="cannot infer"):
        SystemConfig().to_file(tmp_path / "system.cfg")
    SystemConfig().to_file(tmp_path / "system.cfg", fmt="json")
    assert SystemConfig.from_file(tmp_path / "system.cfg",
                                  fmt="json") == SystemConfig()


# --------------------------------------------------------------------- #
# TOML compatibility layer
# --------------------------------------------------------------------- #

def test_fallback_parser_matches_reference_on_emitted_subset():
    tomllib = pytest.importorskip("tomllib")
    text = dumps_toml({"schema_version": 1,
                       "system": SystemConfig.with_hermes("popet").to_dict()})
    assert loads_toml_subset(text) == tomllib.loads(text)


def test_fallback_parser_handles_spec_shapes():
    document = """
# comment
spec_version = 1
name = "demo"
workloads = [
  "a", "b",
]
[base]
"core.rob_size" = 256
inline = { x = 1, y = [1.5, true], z = "s" }
[[axes]]
name = "ax"
[[axes.points]]
label = "p0"
[axes.points.set]
prefetcher = "none"
[[axes.points]]
label = "p1"
"""
    data = loads_toml_subset(document)
    assert data["workloads"] == ["a", "b"]
    assert data["base"]["core.rob_size"] == 256
    assert data["base"]["inline"] == {"x": 1, "y": [1.5, True], "z": "s"}
    assert [p["label"] for p in data["axes"][0]["points"]] == ["p0", "p1"]
    assert data["axes"][0]["points"][0]["set"] == {"prefetcher": "none"}


@pytest.mark.parametrize("bad", [
    "key",                      # no value
    'a = "unterminated',
    "a = 1\na = 2",             # duplicate key
    "[t]\na = {x = }",
])
def test_fallback_parser_rejects_malformed_documents(bad):
    with pytest.raises(TOMLError):
        loads_toml_subset(bad)


def test_toml_writer_escapes_and_quotes():
    text = dumps_toml({"t": {"core.rob_size": 1, 'quo"te': 'a"b\nc'}})
    assert loads_toml_subset(text) == loads_toml(text)
    assert loads_toml(text)["t"]['quo"te'] == 'a"b\nc'


def test_toml_writer_rejects_none():
    with pytest.raises(TOMLError, match="null"):
        dumps_toml({"a": None})


# --------------------------------------------------------------------- #
# Experiment specs
# --------------------------------------------------------------------- #

def _spec_document():
    return {
        "spec_version": 1,
        "name": "demo",
        "accesses": 700,
        "workloads": ["spec06.stencil", "ligra.bfs"],
        "base": {"prefetcher": "pythia"},
        "axes": [
            {"name": "system", "points": [
                {"label": "pythia"},
                {"label": "pythia+hermes",
                 "set": {"offchip_predictor": "popet",
                         "hermes.enabled": True}},
            ]},
            {"name": "rob", "points": [
                {"label": "rob256", "set": {"core.rob_size": 256}},
                {"label": "rob512", "set": {"core.rob_size": 512}},
            ]},
        ],
    }


def test_spec_expands_cross_product():
    spec = ExperimentSpec.from_dict(_spec_document())
    configs = spec.configs()
    assert list(configs) == ["pythia/rob256", "pythia/rob512",
                             "pythia+hermes/rob256", "pythia+hermes/rob512"]
    assert configs["pythia+hermes/rob256"].core.rob_size == 256
    assert configs["pythia+hermes/rob256"].offchip_predictor == "popet"
    assert configs["pythia/rob512"].offchip_predictor is None
    jobs = spec.jobs()
    assert len(jobs) == 4 * 2
    assert all(job.num_accesses == 700 for job in jobs)
    # Labels flow into the configs the jobs carry.
    assert jobs[0].config.label == "pythia/rob256"


def test_spec_group_matches_run_matrix_shape():
    spec = ExperimentSpec.from_dict(_spec_document())
    fake_results = list(range(8))
    grouped = spec.group(fake_results)
    assert grouped["pythia/rob256"] == [0, 1]
    assert grouped["pythia+hermes/rob512"] == [6, 7]
    with pytest.raises(ValueError, match="8 jobs"):
        spec.group(fake_results[:-1])


def test_spec_category_selection_shares_suite_rule():
    from repro.workloads.suite import select_workload_names
    document = _spec_document()
    del document["workloads"]
    document["categories"] = ["SPEC06", "Ligra"]
    document["per_category"] = 1
    spec = ExperimentSpec.from_dict(document)
    assert spec.workload_names() == select_workload_names(
        ["SPEC06", "Ligra"], 1)


@pytest.mark.parametrize("mutate,message", [
    (lambda d: d.pop("spec_version"), "missing spec_version"),
    (lambda d: d.update(spec_version=99), "unsupported spec_version"),
    (lambda d: d.pop("name"), "non-empty string 'name'"),
    (lambda d: d.update(bogus=1), "unknown spec key"),
    (lambda d: d.update(accesses=-5), "positive int"),
    (lambda d: d.update(base={"nope.rob_size": 1}), "unknown config key"),
    (lambda d: d["axes"][0].update(extra=1), "unknown key"),
    (lambda d: d["axes"][0]["points"][0].pop("label"), "string label"),
    (lambda d: d["axes"][0]["points"].append({"label": "pythia"}),
     "repeats label"),
    (lambda d: d.update(categories=["SPEC06"]), "not both"),
    (lambda d: d.update(workloads=[]), "non-empty array"),
])
def test_spec_document_validation(mutate, message):
    document = _spec_document()
    mutate(document)
    with pytest.raises(ConfigError, match=message):
        ExperimentSpec.from_dict(document)


def test_spec_from_toml_file(tmp_path):
    spec_path = tmp_path / "demo.toml"
    spec_path.write_text("""
spec_version = 1
name = "from-file"
accesses = 600
workloads = ["spec06.stencil"]

[base]
prefetcher = "spp"

[[axes]]
name = "rob"
[[axes.points]]
label = "rob128"
[axes.points.set]
"core.rob_size" = 128
""")
    spec = ExperimentSpec.from_file(spec_path)
    assert spec.name == "from-file"
    assert spec.base.prefetcher == "spp"
    configs = spec.configs()
    assert configs["rob128"].core.rob_size == 128


# --------------------------------------------------------------------- #
# Cache-key stability (acceptance)
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("suffix", ["toml", "json"])
def test_job_key_stable_across_serialize_deserialize(tmp_path, suffix):
    config = SystemConfig.with_hermes("popet", prefetcher="pythia")
    path = tmp_path / f"cfg.{suffix}"
    config.to_file(path)
    reloaded = SystemConfig.from_file(path)
    original = SimJob(config=config, workload="ligra.bfs", num_accesses=900)
    resubmitted = SimJob(config=reloaded, workload="ligra.bfs",
                         num_accesses=900)
    assert original.key() == resubmitted.key()


def test_reloaded_config_hits_result_cache(tmp_path):
    """A config dumped to disk and reloaded reuses the original's cache."""
    config = SystemConfig.baseline("pythia")
    cache = ResultCache(tmp_path / "cache")
    runner = JobRunner(result_cache=cache)
    job = SimJob(config=config, workload="spec06.stencil", num_accesses=800)
    first = runner.run([job])
    assert cache.misses == 1 and cache.hits == 0

    path = tmp_path / "cfg.toml"
    config.to_file(path)
    reloaded_job = SimJob(config=SystemConfig.from_file(path),
                          workload="spec06.stencil", num_accesses=800)
    second = runner.run([reloaded_job])
    assert cache.hits == 1
    assert second == first


def test_job_key_differs_when_config_content_differs():
    job = SimJob(config=SystemConfig(), workload="ligra.bfs",
                 num_accesses=900)
    tweaked = SimJob(config=apply_overrides(SystemConfig(),
                                            {"core.rob_size": 128}),
                     workload="ligra.bfs", num_accesses=900)
    assert job.key() != tweaked.key()


# --------------------------------------------------------------------- #
# Spec sweep == run_matrix (acceptance)
# --------------------------------------------------------------------- #

def test_spec_sweep_bit_identical_to_run_matrix(tmp_path):
    """A TOML-spec sweep reproduces the in-Python run_matrix stats."""
    from repro import api
    from repro.experiments.common import ExperimentSetup, run_matrix

    spec_path = tmp_path / "sweep.toml"
    spec_path.write_text("""
spec_version = 1
name = "equivalence"
accesses = 800
workloads = ["spec06.stencil", "ligra.bfs"]

[base]
prefetcher = "pythia"

[[axes]]
name = "system"
[[axes.points]]
label = "pythia"
[[axes.points]]
label = "pythia+hermes"
[axes.points.set]
offchip_predictor = "popet"
"hermes.enabled" = true
""")
    spec = ExperimentSpec.from_file(spec_path)
    spec_results = api.sweep(spec)

    setup = ExperimentSetup(num_accesses=800)
    setup.workload_names = lambda: ["spec06.stencil", "ligra.bfs"]
    matrix = {
        "pythia": SystemConfig.baseline("pythia").with_label("pythia"),
        "pythia+hermes": SystemConfig.with_hermes(
            "popet", prefetcher="pythia").with_label("pythia+hermes"),
    }
    matrix_results = run_matrix(setup, matrix)

    assert spec_results == matrix_results


def test_validate_rejects_unknown_component_names_before_running():
    config = apply_overrides(SystemConfig(), {"prefetcher": "warp-drive"})
    with pytest.raises(KeyError, match="available.*pythia"):
        config.validate()
    from repro.sim.simulator import simulate_trace
    from repro.workloads.suite import make_trace
    with pytest.raises(KeyError, match="available"):
        simulate_trace(config, make_trace("ligra.bfs", 400))


# --------------------------------------------------------------------- #
# Error propagation (regression tests)
# --------------------------------------------------------------------- #

def test_unknown_component_error_survives_pickling():
    """Worker-raised registry errors must cross the process boundary."""
    import pickle
    from repro.registry import UnknownComponentError
    error = UnknownComponentError("prefetcher", "warp-drive", ["pythia", "spp"])
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, UnknownComponentError)
    assert clone.available == ["pythia", "spp"]
    assert "warp-drive" in str(clone)


def test_parallel_backend_reports_unknown_component_cleanly():
    """A bad config in a pooled sweep surfaces the real error — the
    SweepError names the offending component per failed job, never a
    bare BrokenProcessPool."""
    from repro.runner import JobRunner, ProcessPoolBackend, SweepError
    bad = apply_overrides(SystemConfig(), {"prefetcher": "warp-drive"})
    jobs = [SimJob(config=bad, workload=name, num_accesses=400)
            for name in ("ligra.bfs", "spec06.stencil")]
    with pytest.raises(SweepError, match="warp-drive") as excinfo:
        JobRunner(ProcessPoolBackend(max_workers=2)).run(jobs)
    assert "UnknownComponentError" in str(excinfo.value)
    assert "BrokenProcessPool" not in str(excinfo.value)


def test_override_path_error_is_distinct_keyerror():
    from repro.config import OverridePathError
    with pytest.raises(OverridePathError):
        apply_overrides(SystemConfig(), {"core.rob_sizes": 1})
