"""Tests for the pluggable execution-engine registry (repro.engine).

The bit-identity contract itself is gated by the golden-equivalence
suite (every fixture cell runs under every engine); these tests cover
the registry plumbing, graceful degradation without NumPy, the
cross-engine identity of awkward span boundaries (warmup splits inside
a streaming chunk, chunks smaller than a batch, empty traces), and the
cache-key invariance that licenses sharing results across engines.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro.engine as engine_mod
from repro.engine import (
    EngineUnavailableError,
    available_engines,
    check_engine,
    engine_registry,
    make_engine,
    numpy_or_none,
)
from repro.engine.scalar import ScalarEngine
from repro.registry import UnknownComponentError
from repro.runner.job import SimJob
from repro.sim.config import SystemConfig
from repro.sim.simulator import build_system, simulate_stream, simulate_trace
from repro.workloads.suite import make_trace
from repro.workloads.trace import Trace

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

HAVE_NUMPY = numpy_or_none() is not None
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")


def _result_dict(result):
    # The golden fingerprint captures every stat group (core, hierarchy,
    # per-cache, predictor, Hermes, prefetcher) — far stricter than the
    # flat summary dict.
    from repro.perf.golden import fingerprint_single
    return fingerprint_single(result)


# ---------------------------------------------------------------------- #
# Registry & availability
# ---------------------------------------------------------------------- #

def test_both_engines_are_registered():
    names = engine_registry.names()
    assert "scalar" in names
    assert "vectorized" in names


def test_scalar_engine_is_always_available():
    infos = {info.name: info for info in available_engines()}
    assert infos["scalar"].available
    assert infos["scalar"].requires == ""


def test_unknown_engine_raises_with_known_names():
    with pytest.raises(UnknownComponentError) as excinfo:
        check_engine("warp-drive")
    message = str(excinfo.value)
    assert "warp-drive" in message
    assert "scalar" in message


def test_config_validate_rejects_unknown_engine():
    config = dataclasses.replace(SystemConfig.no_prefetching(),
                                 engine="warp-drive")
    with pytest.raises(UnknownComponentError):
        config.validate()


def test_vectorized_without_numpy_degrades_gracefully(monkeypatch):
    monkeypatch.setattr(engine_mod, "numpy_or_none", lambda: None)
    with pytest.raises(EngineUnavailableError) as excinfo:
        check_engine("vectorized")
    message = str(excinfo.value)
    assert "NumPy" in message
    assert "pip install .[fast]" in message
    assert "scalar" in message  # names the engines that *are* usable
    # SystemConfig.validate() surfaces the same error before any
    # simulation work starts.
    config = dataclasses.replace(SystemConfig.no_prefetching(),
                                 engine="vectorized")
    with pytest.raises(EngineUnavailableError):
        config.validate()
    # And the availability listing reports the requirement.
    infos = {info.name: info for info in available_engines()}
    assert not infos["vectorized"].available
    assert "NumPy" in infos["vectorized"].requires


def test_build_system_honors_engine_field():
    config = SystemConfig.no_prefetching()
    system = build_system(config)
    assert isinstance(system.engine, ScalarEngine)


@needs_numpy
def test_build_system_honors_repro_engine_env(monkeypatch):
    from repro.engine.vectorized import VectorizedEngine
    monkeypatch.setenv("REPRO_ENGINE", "vectorized")
    system = build_system(SystemConfig.no_prefetching())
    assert isinstance(system.engine, VectorizedEngine)


def test_bad_repro_engine_env_fails_actionably(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "warp-drive")
    with pytest.raises(UnknownComponentError):
        build_system(SystemConfig.no_prefetching())


def test_make_engine_requires_known_name():
    config = SystemConfig.no_prefetching()
    system = build_system(config)
    with pytest.raises(UnknownComponentError):
        make_engine("warp-drive", core=system.core,
                    hierarchy=system.hierarchy, hermes=system.hermes)


# ---------------------------------------------------------------------- #
# Cross-engine identity on awkward span boundaries
# ---------------------------------------------------------------------- #

def _config_pair(base):
    scalar = dataclasses.replace(base, engine="scalar")
    vectorized = dataclasses.replace(base, engine="vectorized")
    return scalar, vectorized


@needs_numpy
def test_warmup_split_mid_chunk_is_identical():
    # 2000 accesses, warmup_fraction 0.25 -> boundary at 500, inside the
    # first 700-access chunk: the vectorized engine must split a batch
    # at the stats-reset boundary exactly like the scalar loop.
    base = SystemConfig.with_hermes("popet", prefetcher="spp")
    trace = make_trace("spec06.mcf_chase", 2000)
    scalar_cfg, vectorized_cfg = _config_pair(base)
    expected = _result_dict(simulate_trace(scalar_cfg, trace))
    for chunk_size in (700, 2000):
        streamed = simulate_stream(vectorized_cfg, trace,
                                   chunk_size=chunk_size)
        assert _result_dict(streamed) == expected, f"chunk_size={chunk_size}"


@needs_numpy
def test_stream_chunks_smaller_than_batch_are_identical():
    # Tiny chunks force the vectorized engine through its span-
    # continuation path (and, for 1-access chunks, batches of one).
    base = SystemConfig.baseline("pythia")
    trace = make_trace("ligra.bfs", 600)
    scalar_cfg, vectorized_cfg = _config_pair(base)
    expected = _result_dict(simulate_stream(scalar_cfg, trace, chunk_size=64))
    for chunk_size in (64, 7, 1):
        streamed = simulate_stream(vectorized_cfg, trace,
                                   chunk_size=chunk_size)
        assert _result_dict(streamed) == expected, f"chunk_size={chunk_size}"


@needs_numpy
def test_empty_trace_is_identical():
    trace = Trace(name="empty", category="synthetic", accesses=[])
    scalar_cfg, vectorized_cfg = _config_pair(SystemConfig.no_prefetching())
    scalar = _result_dict(simulate_trace(scalar_cfg, trace))
    vectorized_result = simulate_trace(vectorized_cfg, trace)
    assert scalar == _result_dict(vectorized_result)
    assert vectorized_result.core.memory_instructions == 0


# ---------------------------------------------------------------------- #
# Cache-key invariance
# ---------------------------------------------------------------------- #

def test_job_key_is_engine_invariant():
    base = SystemConfig.with_hermes("popet", prefetcher="pythia")
    scalar_cfg, vectorized_cfg = _config_pair(base)
    scalar_key = SimJob(config=scalar_cfg, workload="spec06.mcf_chase",
                        num_accesses=5000).key()
    vectorized_key = SimJob(config=vectorized_cfg, workload="spec06.mcf_chase",
                            num_accesses=5000).key()
    assert scalar_key == vectorized_key


def test_job_keys_unchanged_for_existing_scalar_configs():
    # Pinned pre-engine-field hashes: the engine field must not shift
    # cache identity for any config that already existed, or every
    # cached result on disk silently invalidates.
    job = SimJob(config=SystemConfig.with_hermes("popet", prefetcher="pythia"),
                 workload="spec06.mcf_chase", num_accesses=5000)
    assert job.key() == ("9193234000c299451981f164b764e060"
                        "887f5352a15613c1ec15f228b5d3271b")
    job = SimJob(config=SystemConfig.no_prefetching(),
                 workload="ligra.bfs", num_accesses=2500)
    assert job.key() == ("ba17b32209e34193495658fa0192b0ce"
                        "73788f61b892b45473c104f0f157b90b")


# ---------------------------------------------------------------------- #
# Scalar engine runs on an interpreter with no NumPy at all
# ---------------------------------------------------------------------- #

def test_scalar_simulation_runs_without_numpy(tmp_path):
    # Shadow numpy with an import-bomb ahead of site-packages: the
    # default (scalar) configuration must simulate fine, and the
    # vectorized engine must fail with the install hint.
    stub = tmp_path / "numpy.py"
    stub.write_text("raise ImportError('numpy stubbed out for this test')\n")
    script = textwrap.dedent("""
        from repro.engine import EngineUnavailableError, check_engine
        from repro.sim.config import SystemConfig
        from repro.sim.simulator import simulate_trace
        from repro.workloads.suite import make_trace

        result = simulate_trace(SystemConfig.no_prefetching(),
                                make_trace("cvp.server_int", 400))
        assert result.core.memory_instructions > 0
        try:
            check_engine("vectorized")
        except EngineUnavailableError as exc:
            assert "pip install .[fast]" in str(exc)
        else:
            raise AssertionError("vectorized should be unavailable")
        print("OK")
    """)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([str(tmp_path), str(SRC)])
    env.pop("REPRO_ENGINE", None)
    proc = subprocess.run([sys.executable, "-c", script],
                          capture_output=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr.decode()
    assert b"OK" in proc.stdout


def test_cli_reports_unknown_engine_with_exit_2(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", "--workload", "ligra.bfs",
         "--accesses", "400", "--set", "engine=warp-drive",
         "--output", str(tmp_path / "out.json")],
        capture_output=True, env=env, timeout=300)
    assert proc.returncode == 2
    stderr = proc.stderr.decode()
    assert "warp-drive" in stderr
    assert "scalar" in stderr
