"""Tests for the experiment orchestration layer (repro.runner)."""

import dataclasses

import pytest

from repro.cpu.core import CoreStats
from repro.experiments.common import ExperimentSetup, run_matrix
from repro.offchip.registry import predictor_registry
from repro.prefetchers.registry import prefetcher_registry
from repro.registry import Registry
from repro.runner import (
    JobRunner,
    PredictorSpec,
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
    SimJob,
    SweepSpec,
)
from repro.sim.config import SystemConfig
from repro.workloads.suite import make_trace, trace_cache

#: Four workloads spanning regular and irregular behaviour.
WORKLOADS = ["spec06.stencil", "spec06.mcf_chase", "ligra.bfs", "cvp.server_int"]
NUM_ACCESSES = 800


def _sweep_jobs():
    configs = [SystemConfig.no_prefetching(),
               SystemConfig.with_hermes("popet", prefetcher="pythia")]
    return [SimJob(config=config, workload=name, num_accesses=NUM_ACCESSES)
            for config in configs for name in WORKLOADS]


# --------------------------------------------------------------------- #
# Backends
# --------------------------------------------------------------------- #

def test_process_pool_matches_serial_bit_identical():
    """Acceptance: 2-config x 4-workload sweep, pool == serial."""
    jobs = _sweep_jobs()
    serial = JobRunner(SerialBackend()).run(jobs)
    pooled = JobRunner(ProcessPoolBackend(max_workers=2)).run(jobs)
    assert serial == pooled
    assert [r.workload for r in serial] == WORKLOADS * 2


def test_process_pool_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ProcessPoolBackend(max_workers=0)


def test_run_matrix_parallel_matches_serial():
    serial_setup = ExperimentSetup(num_accesses=NUM_ACCESSES, per_category=1,
                                   categories=["SPEC06", "Ligra"])
    parallel_setup = ExperimentSetup(num_accesses=NUM_ACCESSES, per_category=1,
                                     categories=["SPEC06", "Ligra"],
                                     parallel=True, max_workers=2)
    configs = {"noprefetch": SystemConfig.no_prefetching(),
               "pythia": SystemConfig.baseline("pythia")}
    assert run_matrix(serial_setup, configs) == run_matrix(parallel_setup, configs)


def test_multicore_job_executes():
    job = SimJob(config=SystemConfig.baseline("pythia"),
                 workload=("ligra.bfs", "spec06.stencil"),
                 num_accesses=600, mode="multicore")
    result = JobRunner().run([job])[0]
    assert result.workloads == ["ligra.bfs", "spec06.stencil"]
    assert result.throughput > 0


# --------------------------------------------------------------------- #
# Job model
# --------------------------------------------------------------------- #

def test_job_validation():
    config = SystemConfig.no_prefetching()
    with pytest.raises(ValueError):
        SimJob(config=config, workload="ligra.bfs", num_accesses=100, mode="bogus")
    with pytest.raises(ValueError):
        SimJob(config=config, workload=("a", "b"), num_accesses=100, mode="single")
    with pytest.raises(ValueError):
        SimJob(config=config, workload="ligra.bfs", num_accesses=0)
    with pytest.raises(ValueError, match="single-core only"):
        SimJob(config=config, workload=("ligra.bfs", "spec06.stencil"),
               num_accesses=100, mode="multicore",
               predictor_spec=PredictorSpec("popet"))


def test_job_key_is_stable_and_content_sensitive():
    config = SystemConfig.baseline("pythia")
    job = SimJob(config=config, workload="ligra.bfs", num_accesses=500)
    same = SimJob(config=SystemConfig.baseline("pythia"), workload="ligra.bfs",
                  num_accesses=500)
    assert job.key() == same.key()
    longer = SimJob(config=config, workload="ligra.bfs", num_accesses=501)
    assert job.key() != longer.key()
    with_spec = SimJob(config=config, workload="ligra.bfs", num_accesses=500,
                       predictor_spec=PredictorSpec("popet",
                                                    {"activation_threshold": -10}))
    assert job.key() != with_spec.key()


def test_sweep_spec_reducer():
    jobs = [SimJob(config=SystemConfig.no_prefetching(), workload="ligra.bfs",
                   num_accesses=400)]
    spec = SweepSpec(name="ipc", jobs=jobs,
                     reducer=lambda results: [r.ipc for r in results])
    reduced = JobRunner().run_sweep(spec)
    assert len(reduced) == 1 and reduced[0] > 0


# --------------------------------------------------------------------- #
# Caches
# --------------------------------------------------------------------- #

def test_trace_cache_returns_same_object():
    first = make_trace("ligra.pagerank", num_accesses=700)
    second = make_trace("ligra.pagerank", num_accesses=700)
    assert first is second
    assert make_trace("ligra.pagerank", num_accesses=701) is not first


def test_build_suite_hits_trace_cache():
    setup = ExperimentSetup(num_accesses=900, per_category=1,
                            categories=["SPEC06", "Ligra"])
    first = setup.build_suite()
    hits_before = trace_cache().hits
    second = setup.build_suite()
    assert all(a is b for a, b in zip(first, second))
    assert trace_cache().hits >= hits_before + len(first)


class _CountingBackend(SerialBackend):
    def __init__(self):
        self.executed = 0

    def run_outcomes(self, jobs, policy=None, on_complete=None):
        self.executed += len(jobs)
        return super().run_outcomes(jobs, policy, on_complete)


def test_result_cache_short_circuits_backend(tmp_path):
    jobs = [SimJob(config=SystemConfig.no_prefetching(), workload=name,
                   num_accesses=400) for name in WORKLOADS[:2]]
    backend = _CountingBackend()
    runner = JobRunner(backend=backend, result_cache=ResultCache(tmp_path))
    first = runner.run(jobs)
    assert backend.executed == 2
    second = runner.run(jobs)
    assert backend.executed == 2  # all hits, backend untouched
    assert first == second
    assert len(runner.result_cache) == 2


# --------------------------------------------------------------------- #
# Registries
# --------------------------------------------------------------------- #

def test_registry_rejects_duplicate_names():
    registry = Registry("widget")

    @registry.register("w")
    def _make():
        return object()

    with pytest.raises(ValueError, match="duplicate"):
        registry.register("w")(lambda: object())
    # Case-insensitive: "W" collides with "w".
    with pytest.raises(ValueError, match="duplicate"):
        registry.register("W")(lambda: object())


def test_component_registries_reject_redefinition():
    with pytest.raises(ValueError, match="duplicate"):
        predictor_registry.register("popet")(lambda: None)
    with pytest.raises(ValueError, match="duplicate"):
        prefetcher_registry.register("pythia")(lambda: None)


def test_registry_unknown_name():
    """Unknown names raise KeyError listing the registered alternatives."""
    registry = Registry("widget")
    registry.register("gadget")(lambda: None)
    with pytest.raises(KeyError, match="unknown widget 'nope'.*gadget"):
        registry.create("nope")


def test_predictor_spec_builds_through_registry():
    predictor = PredictorSpec("popet", {"features": ("pc_xor_cl_offset",)}).build()
    assert [spec.name for spec in predictor.features] == ["pc_xor_cl_offset"]
    predictor = PredictorSpec("popet", {"activation_threshold": -5}).build()
    assert predictor.config.activation_threshold == -5


# --------------------------------------------------------------------- #
# Satellite regressions
# --------------------------------------------------------------------- #

def test_core_stats_as_dict_field_parity():
    """Every CoreStats field must appear in as_dict (plus derived metrics)."""
    stats = CoreStats()
    field_names = {f.name for f in dataclasses.fields(CoreStats)}
    keys = set(stats.as_dict())
    assert field_names <= keys
    assert {"ipc", "average_offchip_stall"} <= keys


def test_multicore_warmup_resets_stats():
    from dataclasses import replace
    from repro.sim.multicore import simulate_multicore

    traces = [make_trace("ligra.bfs", 1200), make_trace("spec06.mcf_chase", 1200)]
    config = SystemConfig.baseline("pythia")
    warm = simulate_multicore(config, traces)
    cold = simulate_multicore(replace(config, warmup_fraction=0.0), traces)
    # Warmup discards the first quarter of each trace's measured loads.
    for warm_stats, cold_stats in zip(warm.per_core, cold.per_core):
        assert warm_stats.loads < cold_stats.loads
        assert warm_stats.instructions == cold_stats.instructions
