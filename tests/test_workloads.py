"""Unit tests for the trace format and synthetic workload generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    CATEGORIES,
    GraphAnalyticsWorkload,
    MemoryAccess,
    MixedIrregularWorkload,
    PointerChaseWorkload,
    ServerWorkload,
    StreamingWorkload,
    StridedWorkload,
    Trace,
    make_trace,
    multicore_mixes,
    workload_names,
    workload_suite,
)

GENERATORS = [
    StreamingWorkload("stream"),
    StridedWorkload("strided"),
    PointerChaseWorkload("chase"),
    GraphAnalyticsWorkload("graph"),
    MixedIrregularWorkload("mixed"),
    ServerWorkload("server"),
]


def test_trace_metadata_and_counts():
    trace = Trace(name="t", category="TEST", accesses=[
        MemoryAccess(pc=0x400, address=0x1000, nonmem_before=4),
        MemoryAccess(pc=0x404, address=0x2000, is_load=False, nonmem_before=2),
    ])
    assert len(trace) == 2
    assert trace.load_count == 1
    assert trace.store_count == 1
    assert trace.instruction_count == 4 + 1 + 2 + 1
    assert trace.unique_blocks() == 2
    assert trace.unique_pcs() == 2
    assert trace.footprint_bytes() == 128
    summary = trace.summary()
    assert summary["name"] == "t"
    assert summary["loads"] == 1


def test_trace_truncation():
    trace = make_trace("ligra.bfs", num_accesses=500)
    shorter = trace.truncated(100)
    assert len(shorter) == 100
    assert shorter.name == trace.name
    with pytest.raises(ValueError):
        trace.truncated(-1)


def test_memory_access_store_property():
    assert MemoryAccess(pc=1, address=2, is_load=False).is_store
    assert not MemoryAccess(pc=1, address=2, is_load=True).is_store


@pytest.mark.parametrize("generator", GENERATORS, ids=lambda g: g.name)
def test_generators_produce_requested_length(generator):
    trace = generator.generate(1500)
    assert len(trace) == 1500
    assert all(access.address >= 0 for access in trace)
    assert all(access.pc > 0 for access in trace)
    assert trace.load_count > 0


@pytest.mark.parametrize("generator", GENERATORS, ids=lambda g: g.name)
def test_generators_are_deterministic(generator):
    first = generator.generate(400)
    second = generator.generate(400)
    assert [(a.pc, a.address, a.is_load) for a in first] == \
        [(a.pc, a.address, a.is_load) for a in second]


def test_generators_reject_bad_length():
    with pytest.raises(ValueError):
        StreamingWorkload("bad").generate(0)


def test_streaming_workload_is_sequential_per_stream():
    trace = StreamingWorkload("stream", num_streams=1, store_fraction=0.0,
                              dependent_fraction=0.0).generate(100)
    addresses = [access.address for access in trace]
    deltas = {b - a for a, b in zip(addresses, addresses[1:])}
    assert deltas == {8}


def test_pointer_chase_marks_dependent_loads():
    trace = PointerChaseWorkload("chase").generate(2000)
    assert any(access.depends_on_previous_load for access in trace)


def test_graph_workload_mixes_streaming_and_irregular_pcs():
    trace = GraphAnalyticsWorkload("graph").generate(2000)
    pcs = {access.pc for access in trace}
    assert len(pcs) >= 4


def test_suite_catalogue_covers_every_category():
    assert set(CATEGORIES) == {"SPEC06", "SPEC17", "PARSEC", "Ligra", "CVP"}
    for category in CATEGORIES:
        names = workload_names(category)
        assert len(names) >= 3
    assert len(workload_names()) >= 15


def test_workload_names_rejects_unknown_category():
    with pytest.raises(ValueError):
        workload_names("SPEC99")


def test_make_trace_rejects_unknown_name():
    with pytest.raises(ValueError):
        make_trace("not.a.workload")


def test_make_trace_assigns_category():
    trace = make_trace("ligra.pagerank", num_accesses=100)
    assert trace.category == "Ligra"
    assert len(trace) == 100


def test_workload_suite_respects_per_category_limit():
    traces = workload_suite(num_accesses=100, per_category=1)
    assert len(traces) == len(CATEGORIES)
    categories = [trace.category for trace in traces]
    assert categories == CATEGORIES


def test_workload_suite_category_filter():
    traces = workload_suite(num_accesses=100, categories=["Ligra"])
    assert all(trace.category == "Ligra" for trace in traces)


def test_multicore_mixes_shapes():
    mixes = multicore_mixes(num_cores=4, num_mixes=2, num_accesses=50)
    assert len(mixes) == 2
    assert all(len(mix) == 4 for mix in mixes)
    homogeneous = multicore_mixes(num_cores=2, num_mixes=1, num_accesses=50,
                                  homogeneous=True)
    names = {trace.name for trace in homogeneous[0]}
    assert len(names) == 1


def test_multicore_mixes_deterministic_given_seed():
    first = multicore_mixes(num_cores=4, num_mixes=2, num_accesses=20, seed=5)
    second = multicore_mixes(num_cores=4, num_mixes=2, num_accesses=20, seed=5)
    assert [[t.name for t in mix] for mix in first] == \
        [[t.name for t in mix] for mix in second]


@settings(max_examples=10, deadline=None)
@given(st.sampled_from(workload_names()), st.integers(min_value=1, max_value=500))
def test_every_catalogue_workload_generates_valid_traces(name, length):
    trace = make_trace(name, num_accesses=length)
    assert len(trace) == length
    assert trace.instruction_count >= length
    for access in trace:
        assert access.nonmem_before >= 0
        assert access.address >= 0


@pytest.mark.parametrize("name, expected_category", [
    ("spec17.fotonik_phase", "SPEC17"),
    ("parsec.dedup_tenants", "PARSEC"),
    ("cvp.web_bursty", "CVP"),
])
def test_new_scenario_families_in_catalogue(name, expected_category):
    trace = make_trace(name, num_accesses=2000)
    assert len(trace) == 2000
    assert trace.category == expected_category
    # Deterministic given the pinned seed.
    again = make_trace(name, num_accesses=2000)
    assert again.accesses == trace.accesses


def test_phase_changing_workload_rotates_pcs():
    from repro.workloads.generators import PhaseChangingWorkload
    trace = PhaseChangingWorkload("phases", phase_length=500).generate(3000)
    # Each phase draws PCs from its own range, so several distinct PC
    # groups must appear across the six phases.
    assert trace.unique_pcs() >= 8


def test_multi_tenant_workload_partitions_address_space():
    from repro.workloads.generators import MultiTenantWorkload
    generator = MultiTenantWorkload("tenants", num_tenants=4,
                                    tenant_footprint_mb=32)
    trace = generator.generate(4000)
    regions = {(access.address - 0x1000_0000)
               // generator.tenant_footprint_bytes for access in trace}
    assert regions == {0, 1, 2, 3}


def test_bursty_server_workload_has_idle_gaps():
    from repro.workloads.generators import BurstyServerWorkload
    generator = BurstyServerWorkload("bursty", idle_nonmem=400)
    trace = generator.generate(3000)
    gaps = [access.nonmem_before for access in trace]
    assert max(gaps) == 400
    assert sum(1 for gap in gaps if gap == 400) >= 3000 // generator.burst_length
