"""Trace-ingestion subsystem: round-tripping, streaming, discovery."""

from __future__ import annotations

import gzip

import pytest

from repro.runner.job import SimJob
from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate_stream, simulate_trace
from repro.workloads.formats import (
    TRACE_FORMAT_VERSION,
    TraceHeader,
    convert_trace,
    detect_format,
    format_names,
    is_trace_path,
    make_format,
    read_header,
    read_trace,
    stream_trace,
    write_trace,
)
from repro.workloads.suite import clear_trace_cache, make_trace
from repro.workloads.trace import MemoryAccess, StreamingTrace, Trace

ALL_FORMATS = ("csv", "jsonl", "bin")


@pytest.fixture(scope="module")
def sample_trace() -> Trace:
    return make_trace("spec06.mcf_chase", num_accesses=1500)


def _path_for(tmp_path, fmt: str, gz: bool = False):
    suffix = {"csv": ".csv", "jsonl": ".jsonl", "bin": ".bin"}[fmt]
    return tmp_path / f"trace{suffix}{'.gz' if gz else ''}"


# ---------------------------------------------------------------------- #
# Round-tripping
# ---------------------------------------------------------------------- #

@pytest.mark.parametrize("fmt", ALL_FORMATS)
@pytest.mark.parametrize("gz", [False, True])
def test_roundtrip_identical_accesses(tmp_path, sample_trace, fmt, gz):
    path = _path_for(tmp_path, fmt, gz)
    write_trace(sample_trace, path)
    restored = read_trace(path)
    assert restored.name == sample_trace.name
    assert restored.category == sample_trace.category
    assert restored.accesses == sample_trace.accesses


@pytest.mark.parametrize("fmt", ALL_FORMATS)
def test_header_carries_metadata(tmp_path, sample_trace, fmt):
    path = _path_for(tmp_path, fmt)
    write_trace(sample_trace, path)
    header = read_header(path)
    assert header.name == sample_trace.name
    assert header.category == sample_trace.category
    assert header.count == len(sample_trace)
    assert header.version == TRACE_FORMAT_VERSION


@pytest.mark.parametrize("src_fmt", ALL_FORMATS)
@pytest.mark.parametrize("dst_fmt", ALL_FORMATS)
def test_convert_between_all_formats(tmp_path, sample_trace, src_fmt, dst_fmt):
    src = _path_for(tmp_path, src_fmt)
    dst = tmp_path / f"converted_{dst_fmt}{make_format(dst_fmt).extensions[0]}"
    write_trace(sample_trace, src)
    header = convert_trace(src, dst)
    assert header.count == len(sample_trace)
    assert read_trace(dst).accesses == sample_trace.accesses


def test_gzip_files_are_actually_compressed(tmp_path, sample_trace):
    plain = _path_for(tmp_path, "bin")
    packed = _path_for(tmp_path, "bin", gz=True)
    write_trace(sample_trace, plain)
    write_trace(sample_trace, packed)
    assert packed.stat().st_size < plain.stat().st_size
    with gzip.open(packed) as handle:
        assert handle.read(4) == b"RPTR"


def test_store_and_dependence_flags_roundtrip(tmp_path):
    trace = Trace(name="flags", category="EXT", accesses=[
        MemoryAccess(pc=16, address=4096, is_load=True, nonmem_before=3,
                     depends_on_previous_load=True),
        MemoryAccess(pc=20, address=8192, is_load=False, nonmem_before=0),
    ])
    for fmt in ALL_FORMATS:
        path = _path_for(tmp_path, fmt)
        write_trace(trace, path)
        assert read_trace(path).accesses == trace.accesses


# ---------------------------------------------------------------------- #
# Discovery
# ---------------------------------------------------------------------- #

def test_registry_lists_builtin_formats():
    assert set(ALL_FORMATS) <= set(format_names())


def test_detect_format_by_extension():
    assert detect_format("a/b.csv") == "csv"
    assert detect_format("a/b.csv.gz") == "csv"
    assert detect_format("b.jsonl") == "jsonl"
    assert detect_format("b.ndjson") == "jsonl"
    assert detect_format("c.bin") == "bin"
    assert detect_format("c.rptr.gz") == "bin"
    with pytest.raises(ValueError):
        detect_format("mystery.dat")


def test_is_trace_path_heuristic():
    assert is_trace_path("traces/app.csv")
    assert is_trace_path("app.jsonl.gz")
    assert not is_trace_path("ligra.bfs")
    assert not is_trace_path("spec06.mcf_chase")


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bogus.bin"
    path.write_bytes(b"NOPE" + b"\x00" * 32)
    with pytest.raises(ValueError):
        read_trace(path)
    text = tmp_path / "bogus.csv"
    text.write_text("pc,address\n1,2\n")
    with pytest.raises(ValueError):
        read_trace(text)


# ---------------------------------------------------------------------- #
# Streaming
# ---------------------------------------------------------------------- #

def test_stream_trace_metadata_and_repeat_iteration(tmp_path, sample_trace):
    path = _path_for(tmp_path, "bin")
    write_trace(sample_trace, path)
    stream = stream_trace(path)
    assert isinstance(stream, StreamingTrace)
    assert stream.name == sample_trace.name
    assert stream.length == len(sample_trace)
    assert list(stream) == sample_trace.accesses
    # File-backed streams re-open per pass.
    assert list(stream) == sample_trace.accesses


@pytest.mark.parametrize("fmt", ALL_FORMATS)
def test_streaming_stats_match_in_memory(tmp_path, sample_trace, fmt):
    """simulate_stream == simulate_trace, bit for bit, on a golden config."""
    path = _path_for(tmp_path, fmt)
    write_trace(sample_trace, path)
    config = SystemConfig.with_hermes("popet", prefetcher="pythia")
    expected = simulate_trace(config, sample_trace)
    # A chunk size that does not divide the trace forces mid-chunk
    # warmup-boundary handling.
    actual = simulate_stream(config, stream_trace(path), chunk_size=277)
    assert actual.as_dict() == expected.as_dict()
    assert actual.core.as_dict() == expected.core.as_dict()
    assert actual.hierarchy == expected.hierarchy
    assert actual.memory_controller == expected.memory_controller
    assert actual.predictor == expected.predictor


def test_simulate_stream_accepts_in_memory_trace(sample_trace):
    config = SystemConfig.baseline("pythia")
    expected = simulate_trace(config, sample_trace)
    actual = simulate_stream(config, StreamingTrace.from_trace(sample_trace))
    assert actual.as_dict() == expected.as_dict()


def test_simulate_stream_never_materialises_source():
    """An endless source completes under max_accesses: the driver reads
    chunks lazily instead of materialising the stream."""

    def endless():
        pc = 0
        while True:
            pc += 4
            yield MemoryAccess(pc=0x400000 + (pc % 256), address=(pc * 64),
                               is_load=True, nonmem_before=4)

    stream = StreamingTrace(name="endless", category="EXT", opener=endless,
                            length=None)
    config = SystemConfig.no_prefetching()
    # An unknown length means the warmup split cannot be computed; the
    # driver warns and measures everything.
    with pytest.warns(UserWarning, match="does not declare its length"):
        result = simulate_stream(config, stream, max_accesses=2000,
                                 chunk_size=64)
    assert result.core.memory_instructions == 2000


# ---------------------------------------------------------------------- #
# Catalogue integration
# ---------------------------------------------------------------------- #

def test_make_trace_accepts_file_paths(tmp_path, sample_trace):
    path = _path_for(tmp_path, "jsonl")
    write_trace(sample_trace, path)
    clear_trace_cache()
    loaded = make_trace(str(path), num_accesses=10 ** 9)
    assert loaded.accesses == sample_trace.accesses
    truncated = make_trace(str(path), num_accesses=100)
    assert len(truncated) == 100
    # Served from the trace cache on repeat.
    assert make_trace(str(path), num_accesses=100) is truncated


def test_make_trace_rejects_missing_file():
    with pytest.raises(ValueError):
        make_trace("no/such/trace.csv", num_accesses=100)


def test_file_workload_runs_through_jobs(tmp_path, sample_trace):
    path = _path_for(tmp_path, "bin")
    write_trace(sample_trace, path)
    job = SimJob(config=SystemConfig.no_prefetching(), workload=str(path),
                 num_accesses=500)
    from repro.runner.execute import execute_job
    result = execute_job(job)
    assert result.workload == sample_trace.name
    # 25% of the 500 simulated accesses are warmup; 375 are measured.
    assert result.core.memory_instructions == 375


def test_job_key_tracks_trace_file_identity(tmp_path, sample_trace):
    """Overwriting a trace file must change the keys of jobs naming it."""
    path = _path_for(tmp_path, "csv")
    write_trace(sample_trace, path)
    job = SimJob(config=SystemConfig.no_prefetching(), workload=str(path),
                 num_accesses=100)
    before = job.key()
    import os
    other = make_trace("ligra.bfs", num_accesses=1500)
    write_trace(other, path)
    os.utime(path, ns=(1, 1))  # force a distinct mtime even on coarse clocks
    assert job.key() != before


def test_simulate_stream_rejects_truncated_source(sample_trace):
    """A stream shorter than its declared length must raise, not return
    warmup-contaminated statistics."""
    stream = StreamingTrace(name="short", category="EXT",
                            opener=lambda: iter(sample_trace.accesses[:100]),
                            length=10_000)
    with pytest.raises(ValueError, match="shorter than its header"):
        simulate_stream(SystemConfig.no_prefetching(), stream)


def test_newer_format_version_rejected(tmp_path, sample_trace):
    path = _path_for(tmp_path, "jsonl")
    write_trace(sample_trace, path)
    text = path.read_text().replace('"version": 1',
                                    f'"version": {TRACE_FORMAT_VERSION + 1}')
    path.write_text(text)
    with pytest.raises(ValueError, match="format version"):
        read_trace(path)


def test_gzip_binary_read_closes_raw_handle(tmp_path, sample_trace):
    path = _path_for(tmp_path, "bin", gz=True)
    write_trace(sample_trace, path)
    from repro.workloads.formats.base import open_binary
    handle = open_binary(path, "rb")
    raw = handle._raw
    handle.close()
    assert raw.closed


def test_job_key_includes_trace_format_version(monkeypatch):
    job = SimJob(config=SystemConfig.no_prefetching(), workload="ligra.bfs",
                 num_accesses=100)
    before = job.key()
    import repro.runner.job as job_module
    monkeypatch.setattr(job_module, "TRACE_FORMAT_VERSION",
                        TRACE_FORMAT_VERSION + 1)
    assert job.key() != before


def test_trace_to_file_from_file_helpers(tmp_path, sample_trace):
    path = tmp_path / "via_methods.csv.gz"
    sample_trace.to_file(path)
    assert Trace.from_file(path).accesses == sample_trace.accesses
    assert StreamingTrace.from_file(path).length == len(sample_trace)


def test_trace_header_defaults():
    header = TraceHeader.from_dict({})
    assert header.name == "trace"
    assert header.version == TRACE_FORMAT_VERSION
