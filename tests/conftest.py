"""Shared pytest fixtures for the Hermes reproduction test suite."""

from __future__ import annotations

import pytest

from repro.sim.config import SystemConfig
from repro.workloads.suite import make_trace
from repro.workloads.trace import Trace


@pytest.fixture(scope="session")
def small_irregular_trace() -> Trace:
    """A pointer-chase trace with a meaningful off-chip load population."""
    return make_trace("spec06.mcf_chase", num_accesses=4000)


@pytest.fixture(scope="session")
def small_streaming_trace() -> Trace:
    """A streaming trace that prefetchers cover almost completely."""
    return make_trace("parsec.streamcluster", num_accesses=4000)


@pytest.fixture(scope="session")
def small_graph_trace() -> Trace:
    """A Ligra-like graph trace (hybrid regular/irregular)."""
    return make_trace("ligra.pagerank", num_accesses=4000)


@pytest.fixture()
def no_prefetch_config() -> SystemConfig:
    return SystemConfig.no_prefetching()


@pytest.fixture()
def pythia_config() -> SystemConfig:
    return SystemConfig.baseline("pythia")


@pytest.fixture()
def hermes_config() -> SystemConfig:
    return SystemConfig.with_hermes("popet", prefetcher="pythia")
