"""Tests for the ``repro lint`` static-analysis framework.

Each rule gets a violating fixture, a clean fixture and (where it makes
sense) a suppressed fixture, all laid out as miniature ``src/repro/...``
trees under ``tmp_path`` so the engine runs exactly as it does against
the real repository.  On top of the per-rule contracts this module pins
the JSON payload round-trip, the CLI exit-code contract, the committed
schema-fingerprint baseline and — the gate the CI job relies on — that
the shipped tree itself lints clean.
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    LINT_SCHEMA_VERSION,
    Diagnostic,
    LintEngine,
    all_rule_ids,
    default_root,
    payload_to_diagnostics,
)
from repro.lint.cli import main as lint_main
from repro.lint.rules.schema_versions import collect_fingerprints, strip_internal

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_tree(root: Path, files: dict) -> None:
    """Materialise ``{relative path: dedented source}`` under ``root``."""
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")


def run_rules(root: Path, rules, **kwargs):
    """One engine run over a fixture tree, restricted to ``rules``."""
    kwargs.setdefault("spec_paths", [root / "specs"])
    kwargs.setdefault("fingerprints_path",
                      root / "tools" / "schema_fingerprints.json")
    return LintEngine(root=root, rules=rules, **kwargs).run()


# --------------------------------------------------------------------- #
# RL001 — hot-path allocation
# --------------------------------------------------------------------- #

HOT_VIOLATION = """\
    '''Fixture.'''


    # repro: hot
    def span(items):
        '''doc'''
        total = 0
        for item in items:
            record = {"item": item}
            squares = [value * value for value in record.values()]
            total += len(squares)
        return total
"""


def test_rl001_flags_allocations_in_hot_loops(tmp_path):
    write_tree(tmp_path, {"src/repro/demo/hot.py": HOT_VIOLATION})
    report = run_rules(tmp_path, ["RL001"])
    assert report.exit_code == 1
    labels = [d.message for d in report.diagnostics]
    assert any("dict literal" in m for m in labels)
    assert any("list comprehension" in m for m in labels)
    assert all(d.rule == "RL001" for d in report.diagnostics)
    assert all("span" in d.message for d in report.diagnostics)
    # file:line anchors land on the allocating statements.
    lines = {d.line for d in report.diagnostics}
    assert lines == {9, 10}


def test_rl001_clean_and_exemptions(tmp_path):
    write_tree(tmp_path, {"src/repro/demo/hot.py": """\
        '''Fixture.'''


        # repro: hot
        def span(items):
            '''doc'''
            scratch = {}
            total = 0
            for item in [i for i in items]:
                if item in (1, 2, 3):
                    total += item
                scratch[item] = total
            return total
    """})
    # The outer iterable runs once (comprehension exempt), constant
    # tuples fold to LOAD_CONST, and the dict is hoisted out of the loop.
    assert run_rules(tmp_path, ["RL001"]).exit_code == 0


def test_rl001_inline_suppression(tmp_path):
    suppressed = HOT_VIOLATION.replace(
        'record = {"item": item}',
        'record = {"item": item}  # repro-lint: disable=RL001').replace(
        "squares = [value * value for value in record.values()]",
        "squares = [value * value for value in record.values()]"
        "  # repro-lint: disable=RL001")
    write_tree(tmp_path, {"src/repro/demo/hot.py": suppressed})
    assert run_rules(tmp_path, ["RL001"]).exit_code == 0


def test_rl001_unmarked_functions_are_exempt(tmp_path):
    write_tree(tmp_path, {"src/repro/demo/cold.py": """\
        '''Fixture.'''


        def helper(items):
            '''doc'''
            return [{"item": item} for item in items]
    """})
    assert run_rules(tmp_path, ["RL001"]).exit_code == 0


# --------------------------------------------------------------------- #
# RL002 — schema-version fingerprints
# --------------------------------------------------------------------- #

SCHEMA_V1 = """\
    '''Fixture schema.'''

    from dataclasses import dataclass

    DEMO_SCHEMA_VERSION = 1


    @dataclass
    class DemoRecord:
        '''doc'''

        alpha: int
        beta: str
"""


def test_rl002_lifecycle(tmp_path):
    module = tmp_path / "src/repro/demo/schema.py"
    write_tree(tmp_path, {"src/repro/demo/schema.py": SCHEMA_V1})
    engine = LintEngine(root=tmp_path, rules=["RL002"],
                        spec_paths=[tmp_path / "specs"],
                        fingerprints_path=tmp_path / "tools" / "fp.json")

    # No committed baseline yet: one actionable finding.
    report = engine.run()
    assert report.exit_code == 1
    assert "missing" in report.diagnostics[0].message
    assert "--update-fingerprints" in report.diagnostics[0].message

    # Baseline, then the same tree is clean.
    engine.update_fingerprints()
    assert engine.run().exit_code == 0

    # Editing the serialized field set without a bump fails the lint.
    module.write_text(textwrap.dedent(SCHEMA_V1).replace(
        "beta: str", "beta: str\n    gamma: float = 0.0"),
        encoding="utf-8")
    report = engine.run()
    assert report.exit_code == 1
    message = report.diagnostics[0].message
    assert "gamma" in message and "DEMO_SCHEMA_VERSION" in message
    assert report.diagnostics[0].path == "src/repro/demo/schema.py"

    # Bumping without re-baselining still fails (loudly, at the constant).
    module.write_text(module.read_text(encoding="utf-8").replace(
        "DEMO_SCHEMA_VERSION = 1", "DEMO_SCHEMA_VERSION = 2"),
        encoding="utf-8")
    report = engine.run()
    assert report.exit_code == 1
    assert "re-baseline" in report.diagnostics[0].message

    # Bump + regenerate together: clean again.
    engine.update_fingerprints()
    assert engine.run().exit_code == 0


def test_rl002_committed_fingerprints_are_current():
    """The committed baseline matches what the live tree generates."""
    engine = LintEngine(root=REPO_ROOT)
    payload = strip_internal(collect_fingerprints(engine.project()))
    committed = json.loads(
        (REPO_ROOT / "tools" / "schema_fingerprints.json")
        .read_text(encoding="utf-8"))
    assert payload == committed


# --------------------------------------------------------------------- #
# RL003 — registry name resolution
# --------------------------------------------------------------------- #

def test_rl003_flags_unresolvable_spec_names(tmp_path):
    write_tree(tmp_path, {"specs/demo.toml": """\
        [base]
        prefetcher = "definitely_not_registered"
        offchip_predictor = "none"
        engine = "scalar"
    """})
    report = run_rules(tmp_path, ["RL003"])
    findings = [d for d in report.diagnostics
                if d.path.endswith("demo.toml")]
    assert len(findings) == 1
    assert "definitely_not_registered" in findings[0].message
    assert findings[0].line == 2
    assert "registered:" in findings[0].message


def test_rl003_clean_spec_and_toml_suppression(tmp_path):
    write_tree(tmp_path, {
        "specs/good.toml": """\
            [base]
            prefetcher = "pythia"
            offchip_predictor = "popet"
        """,
        "specs/waived.toml": """\
            [base]
            prefetcher = "future_prefetcher"  # repro-lint: disable=RL003
        """,
    })
    report = run_rules(tmp_path, ["RL003"])
    assert [d for d in report.diagnostics if d.path.endswith(".toml")] == []


# --------------------------------------------------------------------- #
# RL004 — determinism in the simulation core
# --------------------------------------------------------------------- #

def test_rl004_flags_nondeterminism_in_core(tmp_path):
    write_tree(tmp_path, {"src/repro/sim/clock.py": """\
        '''Fixture.'''

        import random
        import time


        def sample(table):
            '''doc'''
            start = time.time()
            jitter = random.random()
            for key in {"a", "b"}:
                table[key] = start + jitter
            return table
    """})
    report = run_rules(tmp_path, ["RL004"])
    messages = [d.message for d in report.diagnostics]
    assert any("wall-clock" in m for m in messages)
    assert any("random.random" in m for m in messages)
    assert any("hash randomization" in m for m in messages)
    assert len(report.diagnostics) == 3


def test_rl004_seeded_rng_and_non_core_paths_exempt(tmp_path):
    core_clean = """\
        '''Fixture.'''

        import random


        def make_rng(seed):
            '''doc'''
            return random.Random(seed)
    """
    outside = """\
        '''Fixture.'''

        import time


        def stamp():
            '''doc'''
            return time.time()
    """
    write_tree(tmp_path, {
        "src/repro/sim/rng.py": core_clean,
        "src/repro/report/timing.py": outside,  # not a core package
    })
    assert run_rules(tmp_path, ["RL004"]).exit_code == 0


# --------------------------------------------------------------------- #
# RL005 — __slots__ completeness
# --------------------------------------------------------------------- #

def test_rl005_flags_undeclared_attribute(tmp_path):
    write_tree(tmp_path, {"src/repro/demo/record.py": """\
        '''Fixture.'''


        class Record:
            '''doc'''

            __slots__ = ("value",)

            def __init__(self):
                self.value = 0
                self.extra = 1
    """})
    report = run_rules(tmp_path, ["RL005"])
    assert report.exit_code == 1
    assert len(report.diagnostics) == 1
    assert "self.extra" in report.diagnostics[0].message
    assert "Record" in report.diagnostics[0].message


def test_rl005_clean_inherited_and_unresolvable_cases(tmp_path):
    write_tree(tmp_path, {"src/repro/demo/records.py": """\
        '''Fixture.'''


        class Base:
            '''doc'''

            __slots__ = ("base_value",)


        class Child(Base):
            '''doc'''

            __slots__ = ("child_value",)

            def __init__(self):
                self.base_value = 0
                self.child_value = 1


        class DictMixin:
            '''A base with no __slots__ contributes __dict__.'''


        class Loose(DictMixin):
            '''doc'''

            __slots__ = ("a",)

            def set(self):
                '''doc'''
                self.anything_goes = 2
    """})
    # Child's writes resolve through Base's slots; Loose is skipped
    # because its unslotted base makes every write legal.
    assert run_rules(tmp_path, ["RL005"]).exit_code == 0


# --------------------------------------------------------------------- #
# RL006 — cross-engine counter parity
# --------------------------------------------------------------------- #

SCALAR_CORE = """\
    '''Fixture.'''


    class Core:
        '''doc'''

        def run_span(self, stats):
            '''doc'''
            stats.loads += 1
            stats.exotic_counter += 1
"""

VECTORIZED = """\
    '''Fixture.'''


    class Vec:
        '''doc'''

        def flush(self, stats):
            '''doc'''
            stats.loads += 1
            {mirror}
"""


def test_rl006_flags_unmirrored_counter(tmp_path):
    write_tree(tmp_path, {
        "src/repro/cpu/core.py": SCALAR_CORE,
        "src/repro/engine/vectorized.py": VECTORIZED.format(mirror="pass"),
    })
    report = run_rules(tmp_path, ["RL006"])
    assert report.exit_code == 1
    assert len(report.diagnostics) == 1
    diag = report.diagnostics[0]
    assert "stats.exotic_counter" in diag.message
    assert diag.path == "src/repro/cpu/core.py"


def test_rl006_clean_when_mirrored_or_out_of_scope(tmp_path):
    write_tree(tmp_path, {
        "src/repro/cpu/core.py": SCALAR_CORE,
        "src/repro/engine/vectorized.py":
            VECTORIZED.format(mirror="stats.exotic_counter += 1"),
    })
    assert run_rules(tmp_path, ["RL006"]).exit_code == 0
    # With the vectorized module out of scope there is nothing to diff.
    write_tree(tmp_path / "solo", {"src/repro/cpu/core.py": SCALAR_CORE})
    assert run_rules(tmp_path / "solo", ["RL006"]).exit_code == 0


# --------------------------------------------------------------------- #
# RL007 — docstrings (the absorbed tools/check_docstrings.py policy)
# --------------------------------------------------------------------- #

def test_rl007_flags_missing_docstrings(tmp_path):
    write_tree(tmp_path, {"src/repro/demo/bare.py": """\
        def exposed():
            return 1


        class Widget:
            pass
    """})
    report = run_rules(tmp_path, ["RL007"])
    messages = [d.message for d in report.diagnostics]
    assert "module missing docstring" in messages
    assert "exposed() missing docstring" in messages
    assert "class Widget missing docstring" in messages


def test_rl007_report_methods_policy_and_file_suppression(tmp_path):
    renderer = """\
        '''Fixture.'''


        class Renderer:
            '''doc'''

            def render(self):
                return None
    """
    write_tree(tmp_path, {"src/repro/report/widget.py": renderer})
    report = run_rules(tmp_path, ["RL007"])
    assert any("method Renderer.render() missing docstring" in d.message
               for d in report.diagnostics)
    # The same file under a non-report path only needs class/module docs.
    write_tree(tmp_path / "other", {"src/repro/demo/widget.py": renderer})
    assert run_rules(tmp_path / "other", ["RL007"]).exit_code == 0
    # A file-wide waiver silences the whole module.
    write_tree(tmp_path / "waived", {"src/repro/report/widget.py":
               "# repro-lint: disable-file=RL007\n" + textwrap.dedent(renderer)})
    assert run_rules(tmp_path / "waived", ["RL007"]).exit_code == 0


def test_check_docstrings_shim_still_works():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docstrings.py")],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


# --------------------------------------------------------------------- #
# Report payloads and diagnostics
# --------------------------------------------------------------------- #

def test_json_payload_round_trip(tmp_path):
    write_tree(tmp_path, {"src/repro/demo/hot.py": HOT_VIOLATION})
    report = run_rules(tmp_path, ["RL001"])
    payload = json.loads(json.dumps(report.to_payload()))
    assert payload["lint_schema_version"] == LINT_SCHEMA_VERSION
    assert payload["counts"] == {"RL001": len(report.diagnostics)}
    assert payload_to_diagnostics(payload) == report.diagnostics


def test_payload_version_is_checked():
    with pytest.raises(ValueError, match="payload version"):
        payload_to_diagnostics({"lint_schema_version": 99, "diagnostics": []})
    with pytest.raises(ValueError, match="unknown diagnostic field"):
        Diagnostic.from_dict({"rule": "RL001", "path": "x", "line": 1,
                              "message": "m", "severity": "high"})


def test_parse_errors_become_diagnostics(tmp_path):
    write_tree(tmp_path, {"src/repro/demo/broken.py": "def broken(:\n"})
    report = run_rules(tmp_path, ["RL007"])
    assert report.exit_code == 1
    assert report.diagnostics[0].rule == "PARSE"
    assert "does not parse" in report.diagnostics[0].message


# --------------------------------------------------------------------- #
# CLI contract (exit codes, formats, the repro verb)
# --------------------------------------------------------------------- #

def test_cli_exit_codes(tmp_path, capsys):
    write_tree(tmp_path, {"src/repro/demo/hot.py": HOT_VIOLATION})
    root = str(tmp_path)
    assert lint_main(["--root", root, "--rules", "RL001"]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out and "hot.py" in out
    assert lint_main(["--root", root, "--rules", "RL007"]) == 0
    capsys.readouterr()
    assert lint_main(["--root", root, "--rules", "RL999"]) == 2
    err = capsys.readouterr().err
    assert "RL999".lower() in err.lower()
    assert lint_main(["--list-rules"]) == 0
    listed = capsys.readouterr().out
    for rule_id in all_rule_ids():
        assert rule_id in listed


def test_cli_json_output_file(tmp_path, capsys):
    write_tree(tmp_path, {"src/repro/demo/hot.py": HOT_VIOLATION})
    out_file = tmp_path / "lint-report.json"
    code = lint_main(["--root", str(tmp_path), "--rules", "RL001",
                      "--format", "json", "--output", str(out_file)])
    capsys.readouterr()
    assert code == 1
    payload = json.loads(out_file.read_text(encoding="utf-8"))
    diagnostics = payload_to_diagnostics(payload)
    assert diagnostics and all(d.rule == "RL001" for d in diagnostics)


def test_repro_cli_exposes_lint_verb():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--list-rules"],
        capture_output=True, text=True, env=env, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert "RL001" in proc.stdout and "RL007" in proc.stdout


# --------------------------------------------------------------------- #
# The gates CI runs against the real tree
# --------------------------------------------------------------------- #

def test_live_tree_is_clean():
    """`repro lint` must exit 0 on the shipped tree (the CI gate)."""
    report = LintEngine(root=REPO_ROOT).run()
    assert report.exit_code == 0, "\n" + report.render_text()
    assert report.rules == all_rule_ids()
    assert report.files_checked > 0


def test_default_root_is_this_repo():
    assert default_root() == REPO_ROOT


@pytest.mark.skipif(importlib.util.find_spec("mypy") is None,
                    reason="mypy not installed (CI installs it)")
def test_mypy_strict_allowlist_passes():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict"],
        cwd=str(REPO_ROOT), capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stdout + proc.stderr
