"""Fault-injection, crash-resume and cache-hardening tests.

The deterministic fault matrix from the execution layer's failure
model: every injected fault kind (raise / flaky / hang / die), each
followed by a fault-free re-run against the same cache directory that
must produce results byte-identical to a never-faulted baseline, plus
the :class:`ResultCache` corruption and concurrency guarantees those
re-runs rely on.  The ``die``-in-a-pool and kill-9 CLI tests are the
acceptance scenarios from the failure-model design (DESIGN.md §12).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.runner import (
    ExperimentSpec,
    FaultError,
    FaultPlan,
    FaultSpec,
    JobOutcome,
    JobRunner,
    JobTimeoutError,
    ProcessPoolBackend,
    ResultCache,
    RetryPolicy,
    SerialBackend,
    SimJob,
    SweepError,
)
from repro.runner.cache import MAGIC, STALE_TMP_SECONDS
from repro.runner.execute import run_job_attempt
from repro.runner.faults import FAULTS_ENV, active_plan, apply_faults
from repro.runner.status import SweepReport
from repro.sim.config import SystemConfig

from _timeouts import scaled

REPO_ROOT = Path(__file__).resolve().parent.parent


def _jobs(n=4, accesses=400):
    """``n`` distinct small jobs (distinct keys via distinct labels)."""
    return [SimJob(config=SystemConfig(label=f"job{i}"),
                   workload="ligra.pagerank", num_accesses=accesses + i)
            for i in range(n)]


def _results_blob(results):
    """Canonical bytes of a result list, for byte-identity assertions.

    JSON, not pickle: pickle memoisation keys on object *identity*, so
    cache-loaded results (which share interned strings from their own
    unpickling) serialise differently from value-identical fresh ones.
    """
    return json.dumps([r.as_dict() for r in results], sort_keys=True,
                      default=str).encode()


# --------------------------------------------------------------------- #
# RetryPolicy / JobOutcome / SweepReport contracts
# --------------------------------------------------------------------- #

def test_retry_policy_validates_and_backs_off_exponentially():
    policy = RetryPolicy(max_attempts=4, base_delay=0.5, timeout=2.0)
    assert [policy.delay_for(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(timeout=0.0)
    with pytest.raises(ValueError):
        policy.delay_for(0)


def test_job_outcome_rejects_unknown_status():
    with pytest.raises(ValueError):
        JobOutcome(index=0, key="k", status="exploded", attempts=1)


def test_sweep_report_accounts_for_every_job():
    report = SweepReport(name="demo", outcomes=[
        JobOutcome(index=0, key="a", status="ok", attempts=0, cached=True),
        JobOutcome(index=1, key="b", status="ok", attempts=2),
        JobOutcome(index=2, key="c", status="failed", attempts=3, error="x"),
        JobOutcome(index=3, key="d", status="timeout", attempts=1, error="t"),
    ])
    assert report.total == 4
    assert len(report.succeeded) == 2
    assert [o.index for o in report.failures] == [2, 3]
    assert report.cached_count == 1
    assert report.retried_count == 2
    assert report.executed_attempts == 6
    doc = report.to_dict()
    assert (doc["ok"], doc["failed"], doc["timeout"]) == (2, 1, 1)
    assert len(doc["outcomes"]) == 4
    assert "result" not in doc["outcomes"][0]
    assert "2 retried" in report.summary()
    json.dumps(doc)  # must be JSON-serialisable as-is


# --------------------------------------------------------------------- #
# Fault plans
# --------------------------------------------------------------------- #

def test_fault_plan_round_trips_and_matches_longest_prefix():
    plan = FaultPlan(faults={
        "ab": FaultSpec(kind="raise", message="outer"),
        "abcd": FaultSpec(kind="flaky", succeed_on=3),
    })
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    assert again.match("abcdef").kind == "flaky"   # longest prefix wins
    assert again.match("abzz").kind == "raise"
    assert again.match("zz") is None
    with pytest.raises(ValueError):
        FaultSpec(kind="segfault")
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"version": 2, "faults": {}})


def test_fault_plan_activation_crosses_the_environment(tmp_path):
    plan = FaultPlan(faults={"ff": FaultSpec(kind="raise")})
    assert active_plan() is None
    with plan.activated():
        assert os.environ[FAULTS_ENV].startswith("{")
        assert active_plan() == plan
    assert FAULTS_ENV not in os.environ
    # File form: the env var may also name a JSON file on disk.
    plan_file = tmp_path / "plan.json"
    plan_file.write_text(plan.to_json(), encoding="utf-8")
    os.environ[FAULTS_ENV] = str(plan_file)
    try:
        assert active_plan() == plan
    finally:
        del os.environ[FAULTS_ENV]


def test_apply_faults_is_inert_without_a_plan():
    job = _jobs(1)[0]
    apply_faults(job, attempt=1)  # no plan active: must be a no-op
    result = run_job_attempt(job)
    assert result.workload == "ligra.pagerank"


# --------------------------------------------------------------------- #
# Serial failure paths: isolation, retries, skip, resume
# --------------------------------------------------------------------- #

def test_serial_fault_checkpoints_survivors_then_resume_is_identical(tmp_path):
    jobs = _jobs(4)
    baseline = JobRunner(SerialBackend()).run(jobs)
    plan = FaultPlan(faults={jobs[1].key(): FaultSpec(kind="raise")})

    cache = ResultCache(tmp_path / "cache")
    runner = JobRunner(backend=SerialBackend(), result_cache=cache)
    with plan.activated():
        with pytest.raises(SweepError) as excinfo:
            runner.run(jobs)
    report = excinfo.value.report
    assert [o.status for o in report.outcomes] == ["ok", "failed", "ok", "ok"]
    assert "FaultError" in report.failures[0].error
    # Every finished job was checkpointed before the raise ...
    assert len(cache) == 3
    # ... so the fault-free re-run executes exactly one job and the
    # merged results are byte-identical to a never-faulted run.
    results, resumed = runner.run_report(jobs)
    assert _results_blob(results) == _results_blob(baseline)
    assert resumed.cached_count == 3
    assert resumed.executed_attempts == 1


def test_serial_on_error_skip_leaves_a_hole_and_reports_it():
    jobs = _jobs(3)
    plan = FaultPlan(faults={jobs[2].key(): FaultSpec(kind="raise")})
    runner = JobRunner(backend=SerialBackend(), on_error="skip")
    with plan.activated():
        results, report = runner.run_report(jobs)
    assert results[2] is None and results[0] is not None
    assert [o.ok for o in report.outcomes] == [True, True, False]


def test_flaky_job_succeeds_on_retry_with_identical_result():
    jobs = _jobs(2)
    baseline = JobRunner(SerialBackend()).run(jobs)
    plan = FaultPlan(faults={jobs[0].key(): FaultSpec(kind="flaky",
                                                      succeed_on=2)})
    runner = JobRunner(backend=SerialBackend(),
                       retry_policy=RetryPolicy(max_attempts=3))
    with plan.activated():
        results, report = runner.run_report(jobs)
    assert report.outcomes[0].attempts == 2
    assert report.outcomes[0].retried and report.outcomes[0].ok
    assert report.outcomes[1].attempts == 1
    assert _results_blob(results) == _results_blob(baseline)


def test_hang_is_cut_by_the_attempt_timeout():
    jobs = _jobs(2)
    plan = FaultPlan(faults={jobs[0].key(): FaultSpec(kind="hang",
                                                      hang_s=30.0)})
    attempt_budget = scaled(0.5)
    runner = JobRunner(backend=SerialBackend(),
                       retry_policy=RetryPolicy(max_attempts=1,
                                                timeout=attempt_budget),
                       on_error="skip")
    started = time.monotonic()
    with plan.activated():
        results, report = runner.run_report(jobs)
    # Never slept the full hang (bound scales with the attempt budget).
    assert time.monotonic() - started < scaled(15.0)
    assert report.outcomes[0].status == "timeout"
    assert f"{attempt_budget:g}" in report.outcomes[0].error
    assert report.outcomes[1].ok and results[1] is not None


def test_run_job_attempt_timeout_raises_inside_the_worker():
    job = _jobs(1, accesses=2000)[0]
    plan = FaultPlan(faults={job.key(): FaultSpec(kind="hang", hang_s=30.0)})
    with plan.activated():
        with pytest.raises(JobTimeoutError):
            run_job_attempt(job, attempt=1, timeout=scaled(0.2))
    # The deadline must be disarmed afterwards: a fault-free attempt
    # under a generous timeout completes normally.
    result = run_job_attempt(job, attempt=2, timeout=scaled(60.0))
    assert result.workload == "ligra.pagerank"


# --------------------------------------------------------------------- #
# Process-pool failure paths: BrokenProcessPool survival + attribution
# --------------------------------------------------------------------- #

def test_pool_survives_worker_death_and_resume_matches_baseline(tmp_path):
    jobs = _jobs(6)
    baseline = JobRunner(SerialBackend()).run(jobs)
    cache_dir = tmp_path / "cache"
    cache = ResultCache(cache_dir)
    die_path = cache.path_for(jobs[2])  # crash mid-write of its own entry
    plan = FaultPlan(faults={
        jobs[2].key(): FaultSpec(kind="die", corrupt_path=str(die_path)),
        jobs[4].key(): FaultSpec(kind="flaky", succeed_on=2),
    })
    runner = JobRunner(backend=ProcessPoolBackend(max_workers=2),
                       result_cache=cache,
                       retry_policy=RetryPolicy(max_attempts=2),
                       on_error="skip")
    with plan.activated():
        results, report = runner.run_report(jobs)
    by_index = {o.index: o for o in report.outcomes}
    # The crasher alone is charged attempts and fails ...
    assert by_index[2].status == "failed"
    assert by_index[2].attempts == 2
    assert "BrokenProcessPool" in by_index[2].error
    # ... its innocent pool-mates all complete on their first attempt
    # (pool-break victims are re-attributed, never charged) ...
    for index in (0, 1, 3, 5):
        assert by_index[index].ok and by_index[index].attempts == 1
    assert by_index[4].ok and by_index[4].attempts == 2  # genuine flake
    assert results[2] is None

    # ... and the fault-free resume quarantines the partial entry the
    # dying worker left behind, re-runs only the crashed cell, and the
    # merged results are byte-identical to the never-faulted baseline.
    assert die_path.read_bytes().startswith(b"partial")
    resumed_cache = ResultCache(cache_dir)
    resume_runner = JobRunner(backend=ProcessPoolBackend(max_workers=2),
                              result_cache=resumed_cache)
    final, final_report = resume_runner.run_report(jobs)
    assert resumed_cache.quarantined == 1
    assert die_path.with_name(die_path.name + ".corrupt").exists()
    assert _results_blob(final) == _results_blob(baseline)
    assert final_report.cached_count == 5


# --------------------------------------------------------------------- #
# ResultCache hardening
# --------------------------------------------------------------------- #

def test_cache_quarantines_truncated_entry(tmp_path):
    job = _jobs(1)[0]
    cache = ResultCache(tmp_path)
    result = run_job_attempt(job)
    cache.put(job, result)
    path = cache.path_for(job)
    whole = path.read_bytes()
    path.write_bytes(whole[:len(whole) // 2])  # writer died mid-flight
    assert cache.get(job) is None
    assert cache.quarantined == 1
    assert not path.exists()
    assert path.with_name(path.name + ".corrupt").exists()
    # The slot heals: a fresh put serves reads again.
    cache.put(job, result)
    assert cache.get(job) == result


def test_cache_quarantines_wrong_checksum(tmp_path):
    job = _jobs(1)[0]
    cache = ResultCache(tmp_path)
    cache.put(job, run_job_attempt(job))
    path = cache.path_for(job)
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF  # flip one payload bit: checksum must catch it
    path.write_bytes(bytes(raw))
    assert cache.get(job) is None
    assert cache.quarantined == 1


def test_cache_reads_legacy_bare_pickle_entries(tmp_path):
    job = _jobs(1)[0]
    cache = ResultCache(tmp_path)
    result = run_job_attempt(job)
    cache.path_for(job).write_bytes(pickle.dumps(result))  # pre-checksum
    assert cache.get(job) == result
    assert cache.hits == 1 and cache.quarantined == 0


def test_cache_quarantines_unpicklable_garbage(tmp_path):
    job = _jobs(1)[0]
    cache = ResultCache(tmp_path)
    cache.path_for(job).write_bytes(b"partial write interrupted")
    assert cache.get(job) is None
    assert cache.quarantined == 1


def _put_from_child(directory, job_blob, result_blob):
    cache = ResultCache(directory)
    cache.put(pickle.loads(job_blob), pickle.loads(result_blob))


def test_cache_concurrent_put_of_same_key_is_safe(tmp_path):
    job = _jobs(1)[0]
    result = run_job_attempt(job)
    args = (str(tmp_path), pickle.dumps(job), pickle.dumps(result))
    workers = [multiprocessing.Process(target=_put_from_child, args=args)
               for _ in range(2)]
    for proc in workers:
        proc.start()
    for proc in workers:
        proc.join(timeout=scaled(60.0))
        assert proc.exitcode == 0
    cache = ResultCache(tmp_path)
    assert cache.get(job) == result      # whole, checksum-valid entry
    assert len(cache) == 1
    assert not list(Path(tmp_path).glob("*.tmp"))  # no staging leftovers


def test_cache_clear_removes_tmp_and_corrupt_files(tmp_path):
    job = _jobs(1)[0]
    cache = ResultCache(tmp_path)
    cache.put(job, run_job_attempt(job))
    (tmp_path / "orphan.tmp").write_bytes(b"x")
    (tmp_path / "dead.pkl.corrupt").write_bytes(b"y")
    cache.clear()
    assert list(tmp_path.iterdir()) == []
    assert (cache.hits, cache.misses, cache.quarantined) == (0, 0, 0)


def test_cache_init_sweeps_only_stale_tmp_files(tmp_path):
    stale = tmp_path / "stale.tmp"
    fresh = tmp_path / "fresh.tmp"
    stale.write_bytes(b"x")
    fresh.write_bytes(b"y")
    old = time.time() - STALE_TMP_SECONDS - 60
    os.utime(stale, (old, old))
    ResultCache(tmp_path)
    assert not stale.exists()   # orphan of a dead writer: swept
    assert fresh.exists()       # live writer's staging file: kept


def test_cache_entry_format_is_checksummed(tmp_path):
    job = _jobs(1)[0]
    cache = ResultCache(tmp_path)
    cache.put(job, run_job_attempt(job))
    assert cache.path_for(job).read_bytes().startswith(MAGIC)


# --------------------------------------------------------------------- #
# Kill -9 crash-resume through the CLI (the acceptance scenario)
# --------------------------------------------------------------------- #

SPEC_TOML = """\
spec_version = 1
name = "resume-demo"
accesses = 1500
workloads = ["spec06.stencil", "ligra.pagerank", "cvp.server_int"]

[base]
prefetcher = "pythia"

[[axes]]
name = "system"

[[axes.points]]
label = "baseline"
"""


def _cli_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop(FAULTS_ENV, None)
    env.update(extra)
    return env


def _sweep_cmd(spec, cache_dir, out, *extra):
    return [sys.executable, "-m", "repro", "sweep", "--spec", str(spec),
            "--cache-dir", str(cache_dir), "--output", str(out), *extra]


def test_cli_sweep_survives_sigkill_and_resumes_byte_identical(tmp_path):
    spec_path = tmp_path / "spec.toml"
    spec_path.write_text(SPEC_TOML, encoding="utf-8")
    jobs = ExperimentSpec.from_file(spec_path).jobs()
    assert len(jobs) == 3

    # Uninterrupted baseline against its own cache.
    base_out = tmp_path / "base.json"
    subprocess.run(_sweep_cmd(spec_path, tmp_path / "cache-base", base_out),
                   check=True, env=_cli_env(), capture_output=True,
                   timeout=scaled(300.0))

    # Faulted run: the LAST job hangs forever, so the first two
    # checkpoint and the process is then kill -9'd mid-sweep.
    plan = FaultPlan(faults={jobs[-1].key(): FaultSpec(kind="hang",
                                                       hang_s=3600.0)})
    crash_cache = tmp_path / "cache-crash"
    proc = subprocess.Popen(
        _sweep_cmd(spec_path, crash_cache, tmp_path / "crash.json"),
        env=_cli_env(**{FAULTS_ENV: plan.to_json()}),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + scaled(240.0)
        while time.monotonic() < deadline:
            if len(list(crash_cache.glob("*.pkl"))) >= 2:
                break
            if proc.poll() is not None:
                pytest.fail("sweep exited before it could be killed")
            time.sleep(0.05)
        else:
            pytest.fail("first two jobs never checkpointed")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=scaled(60.0))
    assert not (tmp_path / "crash.json").exists()  # died before output

    # Fault-free --resume against the survivor cache: reuses the two
    # checkpoints, runs only the killed job, and the merged output is
    # byte-identical to the uninterrupted baseline.
    resume_out = tmp_path / "resume.json"
    completed = subprocess.run(
        _sweep_cmd(spec_path, crash_cache, resume_out, "--resume"),
        check=True, env=_cli_env(), capture_output=True,
        timeout=scaled(300.0))
    assert b"resume: 2 of 3 job(s) already checkpointed" in completed.stderr
    assert resume_out.read_bytes() == base_out.read_bytes()


def test_cli_sweep_reports_failures_with_exit_code_3(tmp_path):
    spec_path = tmp_path / "spec.toml"
    spec_path.write_text(SPEC_TOML, encoding="utf-8")
    jobs = ExperimentSpec.from_file(spec_path).jobs()
    plan = FaultPlan(faults={jobs[0].key(): FaultSpec(kind="raise")})
    outcomes_path = tmp_path / "outcomes.json"
    completed = subprocess.run(
        _sweep_cmd(spec_path, tmp_path / "cache", tmp_path / "out.json",
                   "--outcomes", str(outcomes_path)),
        env=_cli_env(**{FAULTS_ENV: plan.to_json()}),
        capture_output=True, timeout=scaled(300.0))
    assert completed.returncode == 3
    assert b"checkpointed" in completed.stderr
    # The outcome ledger accounts for every job despite the failure.
    doc = json.loads(outcomes_path.read_text())
    assert doc["jobs"] == 3 and doc["failed"] == 1 and doc["ok"] == 2
    statuses = [o["status"] for o in doc["outcomes"]]
    assert statuses == ["failed", "ok", "ok"]
