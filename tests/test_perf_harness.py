"""Unit tests for the repro.perf benchmark harness plumbing."""

import json

import pytest

from repro.perf import (
    BenchEntry,
    BenchReport,
    compare_reports,
    microbench_configs,
    run_microbench,
    write_report,
)
from repro.perf.golden import GOLDEN_PREDICTORS, GOLDEN_PREFETCHERS, golden_config


def test_bench_report_aggregates():
    report = BenchReport(tag="t", entries=[
        BenchEntry("a", "w1", accesses=1000, wall_s=0.5),
        BenchEntry("a", "w2", accesses=1000, wall_s=1.5),
    ])
    assert report.total_accesses == 2000
    assert report.total_wall_s == pytest.approx(2.0)
    assert report.accesses_per_sec == pytest.approx(1000.0)
    payload = report.as_dict()
    assert payload["tag"] == "t"
    assert len(payload["configs"]) == 2
    assert payload["configs"][0]["accesses_per_sec"] == pytest.approx(2000.0)


def test_write_report_round_trips(tmp_path):
    report = BenchReport(tag="x", entries=[
        BenchEntry("cfg", "wl", accesses=100, wall_s=0.1)])
    path = write_report(report, tmp_path / "BENCH_x.json")
    loaded = json.loads(path.read_text())
    assert loaded["accesses_per_sec"] == pytest.approx(1000.0)


def test_compare_reports_flags_regression():
    baseline = {"accesses_per_sec": 1000.0}
    ok = {"accesses_per_sec": 800.0}
    bad = {"accesses_per_sec": 500.0}
    assert compare_reports(ok, baseline, max_regression=0.30) == []
    failures = compare_reports(bad, baseline, max_regression=0.30)
    assert len(failures) == 1
    assert "regressed" in failures[0]


def test_compare_reports_validates_threshold():
    with pytest.raises(ValueError):
        compare_reports({}, {}, max_regression=1.5)


def test_microbench_configs_cover_hot_path_shapes():
    labels = [config.label for config in microbench_configs()]
    assert "no-prefetching" in labels
    assert "pythia" in labels
    assert any("hermes" in label for label in labels)


def test_golden_config_matrix_labels_are_unique():
    labels = {golden_config(pf, pd).label
              for pf in GOLDEN_PREFETCHERS for pd in GOLDEN_PREDICTORS}
    assert len(labels) == len(GOLDEN_PREFETCHERS) * len(GOLDEN_PREDICTORS)


def test_run_microbench_smoke():
    entries = run_microbench(num_accesses=500,
                             workloads=["cvp.server_int"],
                             configs=[microbench_configs()[0]],
                             repeats=1)
    assert len(entries) == 1
    assert entries[0].accesses == 500
    assert entries[0].accesses_per_sec > 0


def test_run_microbench_validates_arguments():
    with pytest.raises(ValueError):
        run_microbench(num_accesses=0)
    with pytest.raises(ValueError):
        run_microbench(repeats=0)
