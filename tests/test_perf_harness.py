"""Unit tests for the repro.perf benchmark harness plumbing."""

import json
import math
import platform

import pytest

from repro.perf import (
    BenchEntry,
    BenchReport,
    compare_reports,
    microbench_configs,
    run_microbench,
    write_report,
)
from repro.perf.harness import BENCH_SCHEMA_VERSION, EnvironmentMismatchError
from repro.perf.golden import GOLDEN_PREDICTORS, GOLDEN_PREFETCHERS, golden_config


def test_bench_report_aggregates():
    report = BenchReport(tag="t", entries=[
        BenchEntry("a", "w1", accesses=1000, wall_s=0.5),
        BenchEntry("a", "w2", accesses=1000, wall_s=1.5),
    ])
    assert report.total_accesses == 2000
    assert report.total_wall_s == pytest.approx(2.0)
    # Schema 2: geometric mean of per-entry throughputs (2000, 666.67).
    assert report.accesses_per_sec == pytest.approx(
        math.sqrt(2000.0 * (1000.0 / 1.5)))
    payload = report.as_dict()
    assert payload["tag"] == "t"
    assert payload["schema"] == BENCH_SCHEMA_VERSION
    assert payload["engine"] == "scalar"
    assert "numpy" in payload
    assert len(payload["configs"]) == 2
    assert payload["configs"][0]["accesses_per_sec"] == pytest.approx(2000.0)


def test_bench_report_geomean_empty_and_zero():
    assert BenchReport(tag="t").accesses_per_sec == 0.0
    report = BenchReport(tag="t", entries=[
        BenchEntry("a", "w1", accesses=1000, wall_s=0.0)])
    assert report.accesses_per_sec == 0.0


def test_write_report_round_trips(tmp_path):
    report = BenchReport(tag="x", entries=[
        BenchEntry("cfg", "wl", accesses=100, wall_s=0.1)])
    path = write_report(report, tmp_path / "BENCH_x.json")
    loaded = json.loads(path.read_text())
    assert loaded["accesses_per_sec"] == pytest.approx(1000.0)


def test_compare_reports_flags_regression():
    baseline = {"accesses_per_sec": 1000.0}
    ok = {"accesses_per_sec": 800.0}
    bad = {"accesses_per_sec": 500.0}
    assert compare_reports(ok, baseline, max_regression=0.30) == []
    failures = compare_reports(bad, baseline, max_regression=0.30)
    assert len(failures) == 1
    assert "regressed" in failures[0]


def test_compare_reports_validates_threshold():
    with pytest.raises(ValueError):
        compare_reports({}, {}, max_regression=1.5)


def test_compare_reports_refuses_engine_mismatch():
    python = platform.python_version()
    current = {"schema": 2, "engine": "vectorized", "numpy": "2.4.6",
               "python": python, "accesses_per_sec": 900.0}
    baseline = {"schema": 2, "engine": "scalar", "numpy": "2.4.6",
                "python": python, "accesses_per_sec": 1000.0}
    with pytest.raises(EnvironmentMismatchError) as excinfo:
        compare_reports(current, baseline)
    assert "engine" in str(excinfo.value)
    assert "--allow-env-mismatch" in str(excinfo.value)
    # The override flag compares anyway (and 900 vs 1000 is within 30%).
    assert compare_reports(current, baseline, allow_env_mismatch=True) == []


def test_compare_reports_schema1_baseline_is_scalar():
    # A schema-1 baseline predates the engine field: it was produced by
    # the scalar engine, so scalar-vs-schema-1 comparisons pass the env
    # guard while vectorized ones refuse.
    baseline = {"accesses_per_sec": 1000.0, "python": "3.11.7"}
    scalar = {"schema": 2, "engine": "scalar", "numpy": "2.4.6",
              "python": "3.11.2", "accesses_per_sec": 950.0}
    assert compare_reports(scalar, baseline) == []
    vectorized = dict(scalar, engine="vectorized")
    with pytest.raises(EnvironmentMismatchError):
        compare_reports(vectorized, baseline)


def test_compare_reports_refuses_python_minor_mismatch():
    baseline = {"schema": 2, "engine": "scalar", "numpy": "none",
                "python": "3.9.18", "accesses_per_sec": 1000.0}
    current = {"schema": 2, "engine": "scalar", "numpy": "none",
               "python": "3.12.1", "accesses_per_sec": 1000.0}
    with pytest.raises(EnvironmentMismatchError):
        compare_reports(current, baseline)
    # Patch-level differences do not gate.
    patch = dict(current, python="3.9.2")
    assert compare_reports(patch, baseline) == []


def test_microbench_configs_cover_hot_path_shapes():
    labels = [config.label for config in microbench_configs()]
    assert "no-prefetching" in labels
    assert "pythia" in labels
    assert any("hermes" in label for label in labels)


def test_golden_config_matrix_labels_are_unique():
    labels = {golden_config(pf, pd).label
              for pf in GOLDEN_PREFETCHERS for pd in GOLDEN_PREDICTORS}
    assert len(labels) == len(GOLDEN_PREFETCHERS) * len(GOLDEN_PREDICTORS)


def test_run_microbench_smoke():
    entries = run_microbench(num_accesses=500,
                             workloads=["cvp.server_int"],
                             configs=[microbench_configs()[0]],
                             repeats=1)
    assert len(entries) == 1
    assert entries[0].accesses == 500
    assert entries[0].accesses_per_sec > 0


def test_run_microbench_validates_arguments():
    with pytest.raises(ValueError):
        run_microbench(num_accesses=0)
    with pytest.raises(ValueError):
        run_microbench(repeats=0)
