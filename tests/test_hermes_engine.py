"""Unit tests for the Hermes engine (speculative request issue/drop)."""

import pytest

from repro.core.hermes import HermesConfig, HermesEngine
from repro.dram.controller import MemoryController
from repro.offchip.simple import AlwaysOffChipPredictor, NeverOffChipPredictor


def make_engine(predictor=None, config=None):
    controller = MemoryController()
    engine = HermesEngine(predictor or AlwaysOffChipPredictor(), controller,
                          config or HermesConfig())
    return engine, controller


def test_config_variants():
    assert HermesConfig.optimistic().issue_latency == 6
    assert HermesConfig.pessimistic().issue_latency == 18
    assert not HermesConfig.disabled().enabled
    with pytest.raises(ValueError):
        HermesConfig(issue_latency=-1).validate()
    with pytest.raises(ValueError):
        HermesConfig(drain_interval=0).validate()


def test_positive_prediction_issues_hermes_request():
    engine, controller = make_engine()
    decision = engine.predict_and_issue(pc=0x400, address=0x100000, cycle=100)
    assert decision.predicted_offchip
    assert decision.hermes_ready is not None
    assert controller.stats.hermes_requests == 1
    # The request entered the controller after the issue + address-generation latency.
    assert decision.hermes_ready > 100 + engine.config.issue_latency


def test_negative_prediction_issues_nothing():
    engine, controller = make_engine(predictor=NeverOffChipPredictor())
    decision = engine.predict_and_issue(pc=0x400, address=0x100000, cycle=100)
    assert not decision.predicted_offchip
    assert decision.hermes_ready is None
    assert controller.stats.hermes_requests == 0


def test_disabled_hermes_never_issues_even_with_positive_prediction():
    engine, controller = make_engine(config=HermesConfig.disabled())
    decision = engine.predict_and_issue(pc=0x400, address=0x100000, cycle=100)
    assert decision.hermes_ready is None
    assert controller.stats.hermes_requests == 0


def test_issue_latency_delays_hermes_ready():
    fast_engine, _ = make_engine(config=HermesConfig(issue_latency=0))
    slow_engine, _ = make_engine(config=HermesConfig(issue_latency=24))
    fast = fast_engine.predict_and_issue(0x400, 0x200000, cycle=0)
    slow = slow_engine.predict_and_issue(0x400, 0x200000, cycle=0)
    assert slow.hermes_ready - fast.hermes_ready == 24


def test_training_counts_useful_requests_and_updates_predictor():
    engine, _ = make_engine()
    decision = engine.predict_and_issue(0x400, 0x300000, cycle=0)
    engine.train(decision, went_offchip=True, hermes_used=True)
    assert engine.stats.hermes_requests_useful == 1
    assert engine.predictor.stats.true_positives == 1
    decision = engine.predict_and_issue(0x400, 0x340000, cycle=10)
    engine.train(decision, went_offchip=False, hermes_used=False)
    assert engine.predictor.stats.false_positives == 1


def test_unclaimed_requests_get_drained_periodically():
    config = HermesConfig(drain_interval=4)
    engine, controller = make_engine(config=config)
    cycle = 0
    for index in range(12):
        cycle += 10000
        engine.predict_and_issue(0x400, 0x400000 + index * 0x10000, cycle=cycle)
    assert controller.stats.hermes_dropped > 0


def test_storage_is_the_predictors_storage():
    engine, _ = make_engine()
    assert engine.storage_bits() == engine.predictor.storage_bits()
    assert engine.storage_kb == engine.predictor.storage_kb


def test_stats_accounting():
    engine, _ = make_engine(predictor=NeverOffChipPredictor())
    for index in range(5):
        engine.predict_and_issue(0x400, index * 64, cycle=index)
    assert engine.stats.loads_seen == 5
    assert engine.stats.predicted_offchip == 0
    assert engine.stats.hermes_requests_issued == 0
