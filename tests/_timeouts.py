"""Wall-clock scaling for timing-sensitive tests.

Resilience and service tests assert real wall-clock behaviour (attempt
timeouts, kill -9 windows, daemon polls), so their budgets are tuned
for a developer-class machine.  On slow or heavily shared runners
(emulated CI architectures, saturated containers) the same budgets
produce flaky failures that have nothing to do with the code under
test.

``REPRO_TEST_TIMEOUT_SCALE`` is the single knob: a float multiplier
(default ``1``) applied to every wall-clock constant routed through
:func:`scaled`.  CI sets it per job (see ``.github/workflows/ci.yml``);
a developer on a loaded laptop can export ``REPRO_TEST_TIMEOUT_SCALE=3``
and re-run.

Only *budgets* scale (how long we are willing to wait); the injected
fault parameters they race against (e.g. ``hang_s=3600``) stay fixed,
so a scaled run still proves the timeout fired, just with more slack.
"""

from __future__ import annotations

import os

SCALE = float(os.environ.get("REPRO_TEST_TIMEOUT_SCALE", "1") or "1")
if SCALE <= 0:
    raise RuntimeError(
        f"REPRO_TEST_TIMEOUT_SCALE must be a positive float, "
        f"got {os.environ.get('REPRO_TEST_TIMEOUT_SCALE')!r}")


def scaled(seconds: float) -> float:
    """``seconds`` scaled by the environment's timeout multiplier."""
    return seconds * SCALE
