"""Unit tests for the analysis metrics, power model and table formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    PowerModel,
    average,
    format_series,
    format_table,
    geomean,
    geomean_speedup,
    main_memory_overhead,
    percent_increase,
    speedup_by_category,
    stall_reduction,
)
from repro.cpu.core import CoreStats
from repro.sim.results import SimulationResult


def make_result(workload="w", category="SPEC06", config="cfg", ipc=1.0,
                offchip=100, stall=1000, demand=500, prefetch=0, hermes=0, merged=0):
    core = CoreStats(instructions=10000, cycles=int(10000 / ipc), loads=2000,
                     offchip_loads=offchip, blocking_offchip_loads=offchip,
                     stall_cycles_offchip=stall)
    return SimulationResult(
        workload=workload, category=category, config_label=config, core=core,
        hierarchy={"llc_misses": offchip, "loads": 2000, "offchip_loads": offchip,
                   "llc_prefetch_issued": prefetch},
        memory_controller={"demand_requests": demand, "prefetch_requests": prefetch,
                           "hermes_requests": hermes, "merged_requests": merged},
        predictor={"accuracy": 0.8, "coverage": 0.7},
        hermes={"loads_seen": 2000},
        prefetcher={"accesses_observed": 2000},
    )


# --------------------------------------------------------------------------- #
# Scalar helpers
# --------------------------------------------------------------------------- #

def test_geomean_known_values():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)
    assert geomean([]) == 0.0


def test_geomean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


@given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
def test_geomean_bounded_by_min_and_max(values):
    result = geomean(values)
    assert min(values) - 1e-9 <= result <= max(values) + 1e-9


def test_average_and_percent_increase():
    assert average([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    assert average([]) == 0.0
    assert percent_increase(110, 100) == pytest.approx(10.0)
    assert percent_increase(90, 100) == pytest.approx(-10.0)
    assert percent_increase(5, 0) == 0.0


# --------------------------------------------------------------------------- #
# Result-level metrics
# --------------------------------------------------------------------------- #

def test_simulation_result_derived_metrics():
    result = make_result(ipc=2.0, offchip=50, demand=300, prefetch=100, hermes=40,
                         merged=20)
    assert result.ipc == pytest.approx(2.0, rel=1e-3)
    assert result.llc_mpki == pytest.approx(5.0)
    assert result.offchip_load_fraction == pytest.approx(50 / 2000)
    assert result.main_memory_requests == 300 + 100 + 40 - 20
    assert result.predictor_accuracy == pytest.approx(0.8)


def test_speedup_over_requires_same_workload():
    fast = make_result(ipc=1.2)
    slow = make_result(ipc=1.0)
    assert fast.speedup_over(slow) == pytest.approx(1.2, rel=1e-2)
    other = make_result(workload="different")
    with pytest.raises(ValueError):
        fast.speedup_over(other)


def test_geomean_speedup_and_categories():
    baselines = [make_result(workload="a", category="SPEC06", ipc=1.0),
                 make_result(workload="b", category="Ligra", ipc=1.0)]
    results = [make_result(workload="a", category="SPEC06", ipc=1.1),
               make_result(workload="b", category="Ligra", ipc=1.3)]
    speedup = geomean_speedup(results, baselines)
    assert speedup == pytest.approx(math.sqrt(1.1 * 1.3), rel=1e-2)
    table = speedup_by_category(results, baselines)
    assert set(table) == {"SPEC06", "Ligra", "GEOMEAN"}
    assert table["Ligra"] == pytest.approx(1.3, rel=1e-2)


def test_geomean_speedup_missing_baseline_raises():
    with pytest.raises(ValueError):
        geomean_speedup([make_result(workload="a")], [make_result(workload="b")])


def test_main_memory_overhead_and_stall_reduction():
    baselines = [make_result(workload="a", demand=1000, stall=10000)]
    more_requests = [make_result(workload="a", demand=1000, hermes=100, stall=8000)]
    overhead = main_memory_overhead(more_requests, baselines)
    assert overhead == pytest.approx(10.0)
    reduction = stall_reduction(more_requests, baselines)
    assert reduction == pytest.approx(20.0)


# --------------------------------------------------------------------------- #
# Power model
# --------------------------------------------------------------------------- #

def test_power_model_breakdown_and_ordering():
    model = PowerModel()
    baseline = make_result(demand=500, prefetch=0, hermes=0)
    pythia = make_result(demand=500, prefetch=400, hermes=0)
    hermes = make_result(demand=500, prefetch=0, hermes=100)
    assert model.evaluate(baseline).total > 0
    assert model.relative_power(pythia, baseline) > model.relative_power(hermes, baseline) > 1.0
    breakdown = model.evaluate(baseline).as_dict()
    assert set(breakdown) == {"l1", "l2", "llc", "dram", "predictor", "total"}


# --------------------------------------------------------------------------- #
# Table formatting
# --------------------------------------------------------------------------- #

def test_format_table_contains_rows_and_columns():
    text = format_table("Fig X", {"SPEC06": {"speedup": 1.1}, "Ligra": {"speedup": 1.2}})
    assert "Fig X" in text
    assert "SPEC06" in text
    assert "speedup" in text
    assert "1.200" in text


def test_format_table_handles_missing_cells_and_empty():
    text = format_table("T", {"a": {"x": 1.0}, "b": {"y": 2.0}})
    assert "a" in text and "y" in text
    assert "(no data)" in format_table("T", {})


def test_format_series():
    text = format_series("S", {"popet": 0.77, "hmp": 0.47})
    assert "popet" in text
    assert "0.770" in text
    assert "(no data)" in format_series("S", {})
