"""Distributed-sweep concurrency battery.

The acceptance scenarios from the distributed design (DESIGN.md §15):
a fleet of worker subprocesses draining one shared queue with
exactly-once execution proven by the on-disk ledger, byte-identical
payloads against a never-distributed serial run, a kill -9'd worker
whose lease is stolen and whose job alone re-executes, and torn-write
recovery through the coordinator's checksummed harvest.  Plus the unit
contracts those scenarios rest on: the sharded cache layout and its
one-shot flat-directory migration, the lease protocol's claim /
heartbeat / steal dance, delta-sweep matrix diffs (including the
randomized partition property), and the pinned job-key hashes proving
this PR changed the cache *layout* without changing cache *identity*.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.runner import (
    ExperimentSpec,
    FaultPlan,
    FaultSpec,
    JobOutcome,
    JobRunner,
    ResultCache,
    SerialBackend,
    SimJob,
    diff_job_matrices,
    diff_specs,
    make_backend,
)
from repro.runner.distributed import (
    CACHE_LAYOUT_VERSION,
    DEFAULT_LEASE_TTL,
    LAYOUT_MARKER,
    DistributedBackend,
    DoneRecord,
    LeaseRecord,
    QueueJobRecord,
    ShardedResultCache,
    WorkQueue,
    WorkerSummary,
    make_owner_id,
    open_result_cache,
    shard_of,
)
from repro.runner.execute import run_job_attempt
from repro.runner.faults import FAULT_KINDS, FAULTS_ENV, apply_faults
from repro.runner.job import PredictorSpec
from repro.runner.spec import Axis, AxisPoint
from repro.sim.config import SystemConfig

from _timeouts import scaled

REPO_ROOT = Path(__file__).resolve().parent.parent


def _jobs(n=4, accesses=400):
    """``n`` distinct small jobs (distinct keys via distinct labels)."""
    return [SimJob(config=SystemConfig(label=f"job{i}"),
                   workload="ligra.pagerank", num_accesses=accesses + i)
            for i in range(n)]


def _results_blob(results):
    """Canonical bytes of a result list, for byte-identity assertions."""
    return json.dumps([r.as_dict() for r in results], sort_keys=True,
                      default=str).encode()


def _cli_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop(FAULTS_ENV, None)
    env.update(extra)
    return env


def _sweep_cmd(spec, cache_dir, out, *extra):
    return [sys.executable, "-m", "repro", "sweep", "--spec", str(spec),
            "--cache-dir", str(cache_dir), "--output", str(out), *extra]


def _worker_cmd(shared, *extra):
    return [sys.executable, "-m", "repro", "worker", str(shared), *extra]


def _ledger_key_counts(queue):
    """Executions per job key, from the exactly-once evidence files."""
    return Counter(name.split(".", 1)[0] for name in queue.ledger_entries())


# --------------------------------------------------------------------- #
# Job identity is pinned: sharding must not move cache keys
# --------------------------------------------------------------------- #

def test_job_keys_are_pinned_across_the_layout_change():
    """The sharded layout re-homes entries *by* key; the keys themselves
    must not move, or every pre-sharding cache entry silently misses.
    These digests were captured before the sharded layout landed."""
    single = SimJob(config=SystemConfig(), workload="ligra.pagerank",
                    num_accesses=1000)
    multi = SimJob(config=SystemConfig(),
                   workload=("ligra.bfs", "spec06.stencil"),
                   num_accesses=500, mode="multicore")
    pred = SimJob(config=SystemConfig.with_hermes("popet"),
                  workload="cvp.server_int", num_accesses=2000,
                  predictor_spec=PredictorSpec(
                      "popet", {"features": ["pc", "cacheline"]}))
    assert single.key() == ("83166c932c52e087f694dd89ef85e48b"
                           "2c4387a258bb440ec8bce4e20a77d315")
    assert multi.key() == ("0d50e887b94a163da86de7b59154e7e9"
                          "5d2580e2b9ca6090d4f42fac70496136")
    assert pred.key() == ("3921e1d187b8ca077fa5d2c174fc7bec"
                          "74b754f252a5c4e4462da403db3ef322")


# --------------------------------------------------------------------- #
# Sharded cache layout + migration
# --------------------------------------------------------------------- #

def test_sharded_cache_round_trips_and_fans_out(tmp_path):
    jobs = _jobs(16)
    cache = ShardedResultCache(tmp_path)
    assert (tmp_path / LAYOUT_MARKER).exists()
    results = [run_job_attempt(job) for job in jobs]
    for job, result in zip(jobs, results):
        cache.put(job, result)
        path = cache.path_for(job)
        assert path.parent.name == shard_of(job.key())
        assert cache.get(job) == result
    assert len(cache) == 16
    info = cache.layout_info()
    assert info["layout"] == CACHE_LAYOUT_VERSION
    assert 1 <= info["shards"] <= 16
    assert info["shards"] == cache.shard_count()


def test_flat_cache_migrates_in_place_and_keeps_hitting(tmp_path):
    """The compat round-trip: entries written by the flat layout are
    moved — bytes untouched — and keep serving reads afterwards."""
    jobs = _jobs(3)
    flat = ResultCache(tmp_path)
    results = [run_job_attempt(job) for job in jobs]
    for job, result in zip(jobs, results):
        flat.put(job, result)
    flat_bytes = {job.key(): flat.path_for(job).read_bytes() for job in jobs}

    sharded = ShardedResultCache(tmp_path)
    assert (tmp_path / LAYOUT_MARKER).exists()
    assert not list(tmp_path.glob("*.pkl"))  # root fully evacuated
    for job, result in zip(jobs, results):
        assert sharded.path_for(job).read_bytes() == flat_bytes[job.key()]
        assert sharded.get(job) == result
    assert sharded.hits == 3 and sharded.quarantined == 0
    assert len(sharded) == 3
    # Re-opening an already-migrated directory is a no-op.
    assert ShardedResultCache(tmp_path).get(jobs[0]) == results[0]


def test_open_result_cache_defers_to_the_directory_layout(tmp_path):
    flat_dir = tmp_path / "flat"
    flat_dir.mkdir()
    opened = open_result_cache(flat_dir)
    assert type(opened) is ResultCache          # never upgrades
    assert not (flat_dir / LAYOUT_MARKER).exists()
    ShardedResultCache(tmp_path / "sharded")    # upgrade is explicit
    assert isinstance(open_result_cache(tmp_path / "sharded"),
                      ShardedResultCache)


def test_sharded_cache_rejects_a_future_layout(tmp_path):
    (tmp_path / LAYOUT_MARKER).write_text(
        json.dumps({"cache_layout": CACHE_LAYOUT_VERSION + 1}),
        encoding="utf-8")
    with pytest.raises(ValueError, match="layout"):
        ShardedResultCache(tmp_path)


def test_sharded_cache_adopts_straggler_flat_writes(tmp_path):
    """An old-layout writer publishing into the root *after* migration
    is found by the read-side fallback and re-homed on first touch."""
    job = _jobs(1)[0]
    sharded = ShardedResultCache(tmp_path)
    result = run_job_attempt(job)
    ResultCache(tmp_path).put(job, result)      # straggler's flat write
    flat_path = tmp_path / f"{job.key()}.pkl"
    assert flat_path.exists()
    assert sharded.has(job)
    assert sharded.get(job) == result
    assert not flat_path.exists()
    assert sharded.path_for(job).exists()


def test_sharded_cache_quarantines_torn_entry_in_its_shard(tmp_path):
    job = _jobs(1)[0]
    cache = ShardedResultCache(tmp_path)
    cache.put(job, run_job_attempt(job))
    path = cache.path_for(job)
    whole = path.read_bytes()
    path.write_bytes(whole[:len(whole) // 2])
    assert cache.get(job) is None
    assert cache.quarantined == 1
    assert path.with_name(path.name + ".corrupt").exists()
    # The slot heals in place.
    cache.put(job, run_job_attempt(job))
    assert cache.get(job) is not None


# --------------------------------------------------------------------- #
# Queue + lease protocol units
# --------------------------------------------------------------------- #

def _queued_job(queue, job, attempt=1):
    record = QueueJobRecord(key=job.key(), attempt=attempt,
                            job=job.to_dict())
    queue.publish(record)
    return record


def test_queue_meta_ttl_is_fixed_by_the_first_creator(tmp_path):
    first = WorkQueue(tmp_path / "q", lease_ttl=2.5)
    assert first.lease_ttl == 2.5
    assert WorkQueue(tmp_path / "q", lease_ttl=99.0).lease_ttl == 2.5
    assert WorkQueue(tmp_path / "q").lease_ttl == 2.5
    with pytest.raises(ValueError, match="positive"):
        WorkQueue(tmp_path / "q2", lease_ttl=0.0)
    assert WorkQueue(tmp_path / "q3").lease_ttl == DEFAULT_LEASE_TTL


def test_queue_rejects_a_future_schema(tmp_path):
    WorkQueue(tmp_path / "q")
    meta = tmp_path / "q" / "META.json"
    doc = json.loads(meta.read_text())
    doc["queue_schema"] = 99
    meta.write_text(json.dumps(doc), encoding="utf-8")
    with pytest.raises(ValueError, match="queue_schema"):
        WorkQueue(tmp_path / "q")


def test_publish_is_idempotent_and_done_keys_stay_done(tmp_path):
    job = _jobs(1)[0]
    queue = WorkQueue(tmp_path / "q")
    record = QueueJobRecord(key=job.key(), attempt=1, job=job.to_dict())
    assert queue.publish(record) is True
    assert queue.publish(record) is False       # already published
    assert queue.pending_keys() == [job.key()]
    queue.complete(DoneRecord(key=job.key(), status="ok", attempts=1))
    assert queue.pending_keys() == []
    assert queue.publish(record) is False       # done keys never reopen
    # A resumed coordinator must not clobber a steal-bumped attempt.
    queue2 = WorkQueue(tmp_path / "q2")
    _queued_job(queue2, job, attempt=3)
    assert queue2.publish(record) is False
    assert queue2.job_record(job.key()).attempt == 3


def test_claim_heartbeat_release_cycle(tmp_path):
    job = _jobs(1)[0]
    queue = WorkQueue(tmp_path / "q", lease_ttl=30.0)
    _queued_job(queue, job)
    key = job.key()
    record = queue.try_claim(key, "alice")
    assert record is not None and record.attempt == 1
    assert queue.owns(key, "alice") and not queue.owns(key, "bob")
    assert queue.try_claim(key, "bob") is None  # fresh lease holds
    assert queue.heartbeat(key, "alice") is True
    assert queue.heartbeat(key, "bob") is False
    lease = queue.lease_record(key)
    assert lease == LeaseRecord(key=key, owner="alice", attempt=1)
    queue.release(key, "alice")
    assert queue.lease_record(key) is None
    assert queue.try_claim(key, "bob").attempt == 1  # no false bump
    # A claim on a finished or unknown key never succeeds.
    queue.complete(DoneRecord(key=key, status="ok", attempts=1), owner="bob")
    assert queue.try_claim(key, "alice") is None
    assert queue.try_claim("f" * 64, "alice") is None


def test_stale_lease_is_stolen_with_an_attempt_bump(tmp_path):
    job = _jobs(1)[0]
    queue = WorkQueue(tmp_path / "q", lease_ttl=5.0)
    _queued_job(queue, job)
    key = job.key()
    assert queue.try_claim(key, "dead").attempt == 1
    assert queue.try_claim(key, "live") is None       # still fresh
    assert queue.stale_lease_count() == 0
    claim = tmp_path / "q" / "claims" / f"{key}.json"
    old = time.time() - 6.0
    os.utime(claim, (old, old))                       # heartbeats stopped
    assert queue.stale_lease_count() == 1
    stolen = queue.try_claim(key, "live")
    assert stolen is not None and stolen.attempt == 2
    assert queue.owns(key, "live")
    assert queue.heartbeat(key, "dead") is False      # old owner is out
    assert queue.job_record(key).attempt == 2         # bump persisted


def test_reenqueue_retracts_the_done_record(tmp_path):
    job = _jobs(1)[0]
    queue = WorkQueue(tmp_path / "q")
    _queued_job(queue, job)
    key = job.key()
    queue.complete(DoneRecord(key=key, status="ok", attempts=1))
    assert queue.pending_keys() == []
    queue.reenqueue(key, attempt=2)
    assert queue.pending_keys() == [key]
    assert queue.done_record(key) is None
    assert queue.job_record(key).attempt == 2
    with pytest.raises(ValueError, match="unknown key"):
        queue.reenqueue("f" * 64, attempt=2)


def test_execution_ledger_is_exactly_once_evidence(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    queue.record_execution("aabb", "w1", 1)
    queue.record_execution("aabb", "w1", 1)     # exact re-drop: no dup
    queue.record_execution("aabb", "w2", 2)
    queue.record_execution("ccdd", "w1", 1)
    assert queue.ledger_entries("aabb") == ["aabb.w1.1", "aabb.w2.2"]
    assert len(queue.ledger_entries()) == 3


def test_queue_records_reject_unknown_keys_and_schemas():
    good_job = {"queue_schema": 1, "key": "aa", "attempt": 1, "job": {}}
    assert QueueJobRecord.from_dict(good_job).key == "aa"
    with pytest.raises(ValueError, match="unknown job-record"):
        QueueJobRecord.from_dict({**good_job, "extra": 1})
    with pytest.raises(ValueError, match="queue_schema"):
        QueueJobRecord.from_dict({**good_job, "queue_schema": 99})
    good_lease = {"lease_schema": 1, "key": "aa", "owner": "w", "attempt": 1}
    assert LeaseRecord.from_dict(good_lease).owner == "w"
    with pytest.raises(ValueError, match="unknown lease"):
        LeaseRecord.from_dict({**good_lease, "extra": 1})
    with pytest.raises(ValueError, match="lease_schema"):
        LeaseRecord.from_dict({**good_lease, "lease_schema": 99})
    done = DoneRecord(key="aa", status="ok", attempts=1, worker="w")
    assert DoneRecord.from_dict(done.to_dict()) == done
    with pytest.raises(ValueError, match="unknown done-record"):
        DoneRecord.from_dict({**done.to_dict(), "extra": 1})


def test_queue_stats_count_every_protocol_surface(tmp_path):
    jobs = _jobs(3)
    queue = WorkQueue(tmp_path / "q", lease_ttl=7.0)
    for job in jobs:
        _queued_job(queue, job)
    queue.try_claim(jobs[0].key(), "w1")
    queue.record_execution(jobs[0].key(), "w1", 1)
    queue.complete(DoneRecord(key=jobs[1].key(), status="ok", attempts=1))
    queue.complete(DoneRecord(key=jobs[2].key(), status="failed",
                              attempts=2, error="boom"))
    stats = queue.stats()
    assert stats["lease_ttl"] == 7.0
    assert stats["published"] == 3
    assert stats["pending"] == 1
    assert stats["active_leases"] == 1
    assert stats["stale_leases"] == 0
    assert stats["done"] == 2 and stats["failed"] == 1
    assert stats["ledger_entries"] == 1
    assert stats["closed"] is False
    queue.close()
    assert queue.is_closed()
    assert WorkQueue.stats_for(tmp_path / "q")["closed"] is True
    assert WorkQueue.stats_for(tmp_path / "nowhere") is None


def test_owner_ids_and_worker_summary():
    first, second = make_owner_id(), make_owner_id()
    assert first != second
    assert first.startswith(f"worker-{os.getpid()}-")
    assert make_owner_id("coordinator").startswith("coordinator-")
    summary = WorkerSummary(owner="w", executed=2, cached=1, keys=["a", "b"])
    doc = summary.to_dict()
    assert doc["executed"] == 2 and doc["cached"] == 1
    assert doc["keys"] == ["a", "b"]
    json.dumps(doc)


# --------------------------------------------------------------------- #
# Fault-kind extensions + worker attribution
# --------------------------------------------------------------------- #

def test_protocol_fault_kinds_are_inert_inside_attempts():
    assert "torn-write" in FAULT_KINDS and "lease-steal" in FAULT_KINDS
    job = _jobs(1)[0]
    plan = FaultPlan(faults={
        job.key(): FaultSpec(kind="torn-write", succeed_on=2)})
    assert FaultPlan.from_json(plan.to_json()) == plan  # round-trips
    with plan.activated():
        apply_faults(job, attempt=1)            # no-op, must not raise
        result = run_job_attempt(job)
    assert result.workload == "ligra.pagerank"
    FaultSpec(kind="lease-steal", succeed_on=3)  # valid kind


def test_job_outcome_worker_attribution_is_optional_in_the_doc():
    bare = JobOutcome(index=0, key="k", status="ok", attempts=1)
    assert "worker" not in bare.to_dict()       # pre-existing docs stable
    attributed = JobOutcome(index=0, key="k", status="ok", attempts=1,
                            worker="worker-1-aa")
    assert attributed.to_dict()["worker"] == "worker-1-aa"


def test_make_backend_registry():
    assert isinstance(make_backend("serial"), SerialBackend)
    distributed = make_backend("distributed", shared_dir="/tmp/x",
                               lease_ttl=5.0)
    assert isinstance(distributed, DistributedBackend)
    with pytest.raises(ValueError, match="shared cache directory"):
        make_backend("distributed")
    with pytest.raises(ValueError):
        make_backend("carrier-pigeon")


# --------------------------------------------------------------------- #
# Solo coordinator: the backend contract, torn-write and steal recovery
# --------------------------------------------------------------------- #

def test_solo_distributed_backend_matches_serial_byte_identical(tmp_path):
    jobs = _jobs(4)
    baseline = JobRunner(SerialBackend()).run(jobs)
    runner = JobRunner(backend=DistributedBackend(tmp_path),
                       result_cache=ShardedResultCache(tmp_path))
    results, report = runner.run_report(jobs)
    assert _results_blob(results) == _results_blob(baseline)
    assert all(o.ok for o in report.outcomes)
    assert all(o.worker and o.worker.startswith("coordinator-")
               for o in report.outcomes)
    queue = WorkQueue(tmp_path / "queue")
    assert queue.is_closed()
    assert _ledger_key_counts(queue) == {job.key(): 1 for job in jobs}
    # A fresh runner against the same shared dir is served from cache.
    rerun, rereport = JobRunner(
        backend=DistributedBackend(tmp_path),
        result_cache=ShardedResultCache(tmp_path)).run_report(jobs)
    assert _results_blob(rerun) == _results_blob(baseline)
    assert rereport.cached_count == 4


def test_duplicate_jobs_share_one_execution(tmp_path):
    job = _jobs(1)[0]
    outcomes = DistributedBackend(tmp_path).run_outcomes([job, job])
    assert [o.index for o in outcomes] == [0, 1]
    assert all(o.ok for o in outcomes)
    assert outcomes[0].key == outcomes[1].key
    queue = WorkQueue(tmp_path / "queue")
    assert _ledger_key_counts(queue) == {job.key(): 1}


def test_torn_write_is_quarantined_and_reexecuted(tmp_path):
    """A worker publishes a checksum-failing entry and claims success;
    the coordinator's verified harvest must catch it and re-run."""
    jobs = _jobs(3)
    baseline = JobRunner(SerialBackend()).run(jobs)
    victim = jobs[1].key()
    plan = FaultPlan(faults={victim: FaultSpec(kind="torn-write",
                                               succeed_on=2)})
    with plan.activated():
        outcomes = DistributedBackend(tmp_path).run_outcomes(jobs)
    assert all(o.ok for o in outcomes)
    assert outcomes[1].attempts == 2            # re-run was a new attempt
    results = [o.result for o in outcomes]
    assert _results_blob(results) == _results_blob(baseline)
    corrupt = (tmp_path / shard_of(victim) / f"{victim}.pkl.corrupt")
    assert corrupt.exists()                     # the torn entry, impounded
    # The torn publish never executed the simulator, so the ledger shows
    # exactly one *real* execution, at the bumped attempt.
    queue = WorkQueue(tmp_path / "queue")
    entries = queue.ledger_entries(victim)
    assert len(entries) == 1 and entries[0].endswith(".2")


def test_abandoned_lease_ages_out_and_is_stolen(tmp_path):
    """A worker that wedges right after claiming (the lease-steal fault)
    stops heartbeating; the key must be reclaimed with a bumped attempt."""
    jobs = _jobs(2)
    baseline = JobRunner(SerialBackend()).run(jobs)
    victim = jobs[0].key()
    plan = FaultPlan(faults={victim: FaultSpec(kind="lease-steal",
                                               succeed_on=2)})
    backend = DistributedBackend(tmp_path, lease_ttl=scaled(0.5))
    started = time.monotonic()
    with plan.activated():
        outcomes = backend.run_outcomes(jobs)
    assert all(o.ok for o in outcomes)
    assert outcomes[0].attempts == 2            # the steal bumped it
    assert time.monotonic() - started >= 0.5    # a TTL actually elapsed
    assert _results_blob([o.result for o in outcomes]) == \
        _results_blob(baseline)
    queue = WorkQueue(tmp_path / "queue")
    assert queue.job_record(victim).attempt == 2


# --------------------------------------------------------------------- #
# Delta sweeps
# --------------------------------------------------------------------- #

def test_delta_partitions_the_new_matrix_exactly():
    old = _jobs(4)
    new = old[:2] + [SimJob(config=SystemConfig(label=f"fresh{i}"),
                            workload="ligra.bfs", num_accesses=500 + i)
                     for i in range(3)]
    delta = diff_job_matrices(new, old)
    assert [job.key() for job in delta.unchanged] == \
        [job.key() for job in old[:2]]
    assert [job.key() for job in delta.changed] == \
        [job.key() for job in new[2:]]
    assert delta.total == len(new)
    assert delta.removed_keys == sorted(job.key() for job in old[2:])
    assert "3 changed of 5" in delta.summary()
    doc = delta.to_dict()
    assert (doc["changed"], doc["unchanged"], doc["removed"]) == (3, 2, 2)
    assert doc["changed_keys"] == [job.key() for job in delta.changed]
    json.dumps(doc)


def _random_spec(rng):
    """A seeded random spec over a small axis/workload pool."""
    pool = ["ligra.pagerank", "ligra.bfs", "spec06.stencil",
            "cvp.server_int"]
    points = [AxisPoint(label=f"p{i}",
                        set={"core.rob_size": rng.choice([128, 256, 384,
                                                          512])})
              for i in range(rng.randint(1, 4))]
    return ExperimentSpec(name="rand",
                          axes=[Axis(name="rob", points=points)],
                          workloads=rng.sample(pool, rng.randint(1, 4)),
                          accesses=rng.choice([500, 1000]))


@pytest.mark.parametrize("seed", range(8))
def test_delta_partition_property_randomized(seed):
    """For any spec pair: changed ∪ unchanged == the new matrix (order
    preserved), the partition is disjoint, unchanged keys all existed
    before, and removed keys are exactly the old keys that vanished."""
    rng = random.Random(seed)
    old, new = _random_spec(rng), _random_spec(rng)
    delta = diff_specs(new, old)
    old_keys = {job.key() for job in old.jobs()}
    new_keys = [job.key() for job in new.jobs()]
    changed = [job.key() for job in delta.changed]
    unchanged = [job.key() for job in delta.unchanged]
    assert set(changed) | set(unchanged) == set(new_keys)
    assert not set(changed) & set(unchanged)
    assert set(unchanged) <= old_keys
    assert not set(changed) & old_keys
    assert delta.removed_keys == sorted(old_keys - set(new_keys))
    # The partition preserves the new matrix's execution order.
    assert changed == [k for k in new_keys if k not in old_keys]
    assert unchanged == [k for k in new_keys if k in old_keys]
    assert delta.total == len(new_keys)
    # The spec-level entry point agrees with the matrix-level one.
    again = new.delta(old)
    assert [j.key() for j in again.changed] == changed


# --------------------------------------------------------------------- #
# CLI: worker lifecycle, the fleet acceptance run, kill -9, --since-spec
# --------------------------------------------------------------------- #

def _axis_spec_toml(name, sizes, workloads, accesses):
    lines = [f'spec_version = 1',
             f'name = "{name}"',
             f'accesses = {accesses}',
             f'workloads = {json.dumps(list(workloads))}',
             '',
             '[base]',
             'prefetcher = "pythia"',
             '',
             '[[axes]]',
             'name = "rob"']
    for size in sizes:
        lines += ['', '[[axes.points]]', f'label = "rob{size}"',
                  '[axes.points.set]', f'"core.rob_size" = {size}']
    return "\n".join(lines) + "\n"


def test_cli_worker_exits_cleanly_when_the_queue_never_appears(tmp_path):
    completed = subprocess.run(
        _worker_cmd(tmp_path / "nowhere", "--wait-for-queue", "0.2"),
        env=_cli_env(), capture_output=True, timeout=scaled(120.0))
    assert completed.returncode == 0
    assert b"0 executed" in completed.stderr
    summary = json.loads(completed.stdout)
    assert summary["executed"] == 0 and summary["keys"] == []


def test_four_workers_drain_a_64_job_sweep_exactly_once(tmp_path):
    """The fleet acceptance run: 4 external workers plus the
    participating coordinator drain a 64-job matrix cooperatively;
    every unique key executes exactly once (ledger-proven) and the
    sweep output is byte-identical to a cold serial run."""
    spec_path = tmp_path / "spec.toml"
    spec_path.write_text(_axis_spec_toml(
        "dist-accept", [64 + 32 * i for i in range(16)],
        ["ligra.pagerank", "ligra.bfs", "spec06.stencil", "cvp.server_int"],
        accesses=300), encoding="utf-8")
    jobs = ExperimentSpec.from_file(spec_path).jobs()
    assert len(jobs) == 64
    assert len({job.key() for job in jobs}) == 64

    base_out = tmp_path / "base.json"
    subprocess.run(_sweep_cmd(spec_path, tmp_path / "cache-serial", base_out),
                   check=True, env=_cli_env(), capture_output=True,
                   timeout=scaled(300.0))

    shared = tmp_path / "shared"
    dist_out = tmp_path / "dist.json"
    workers = [subprocess.Popen(
        _worker_cmd(shared, "--poll-interval", "0.02",
                    "--wait-for-queue", str(scaled(120.0)),
                    "--max-idle", str(scaled(60.0))),
        env=_cli_env(), stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
        for _ in range(4)]
    try:
        subprocess.run(
            _sweep_cmd(spec_path, shared, dist_out,
                       "--backend", "distributed"),
            check=True, env=_cli_env(), capture_output=True,
            timeout=scaled(300.0))
        summaries = []
        for proc in workers:
            stdout, _ = proc.communicate(timeout=scaled(120.0))
            assert proc.returncode == 0
            summaries.append(json.loads(stdout))
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.kill()

    assert dist_out.read_bytes() == base_out.read_bytes()
    queue = WorkQueue(shared / "queue")
    counts = _ledger_key_counts(queue)
    assert counts == {job.key(): 1 for job in jobs}   # exactly once, all 64
    owners = {name.split(".")[1] for name in queue.ledger_entries()}
    assert len(owners) >= 2                 # genuinely cooperative drain
    fleet_done = sum(s["executed"] + s["cached"] for s in summaries)
    assert fleet_done == sum(len(s["keys"]) for s in summaries)
    stats = queue.stats()
    assert stats["done"] == 64 and stats["failed"] == 0
    assert stats["pending"] == 0 and stats["closed"] is True


def test_kill9_worker_is_stolen_and_only_its_job_reruns(tmp_path):
    """A worker hard-killed mid-job stops heartbeating; its lease ages
    out, the coordinator steals the key as a fresh attempt, and the
    finished sweep is byte-identical with exactly one double-executed
    key — the one that died in flight."""
    spec_path = tmp_path / "spec.toml"
    spec_path.write_text(_axis_spec_toml(
        "kill9", [128, 256, 512], ["ligra.pagerank", "spec06.stencil"],
        accesses=400), encoding="utf-8")
    jobs = ExperimentSpec.from_file(spec_path).jobs()
    assert len(jobs) == 6
    hang_key = jobs[0].key()

    base_out = tmp_path / "base.json"
    subprocess.run(_sweep_cmd(spec_path, tmp_path / "cache-serial", base_out),
                   check=True, env=_cli_env(), capture_output=True,
                   timeout=scaled(300.0))

    # Pre-publish the matrix so the victim can start before any
    # coordinator exists; its TTL is fixed here, in the queue META.
    shared = tmp_path / "shared"
    ShardedResultCache(shared)
    queue = WorkQueue(shared / "queue", lease_ttl=scaled(2.0))
    for job in jobs:
        queue.publish(QueueJobRecord(key=job.key(), attempt=1,
                                     job=job.to_dict()))

    # The victim alone sees a hang fault on one key: it works normally
    # until it claims that key, then wedges mid-execution (heartbeating)
    # until kill -9 silences it.
    plan = FaultPlan(faults={hang_key: FaultSpec(kind="hang",
                                                 hang_s=3600.0)})
    victim = subprocess.Popen(
        _worker_cmd(shared, "--poll-interval", "0.02"),
        env=_cli_env(**{FAULTS_ENV: plan.to_json()}),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + scaled(240.0)
        while time.monotonic() < deadline:
            if queue.ledger_entries(hang_key):
                break
            if victim.poll() is not None:
                pytest.fail("victim worker exited before it could be killed")
            time.sleep(0.05)
        else:
            pytest.fail("victim never started the faulted job")
        assert queue.done_record(hang_key) is None   # genuinely in flight
    finally:
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=scaled(60.0))

    # Fault-free coordinator: harvests whatever the victim finished,
    # steals the orphaned lease once it ages out, re-runs that key only.
    dist_out = tmp_path / "dist.json"
    subprocess.run(
        _sweep_cmd(spec_path, shared, dist_out, "--backend", "distributed"),
        check=True, env=_cli_env(), capture_output=True,
        timeout=scaled(300.0))
    assert dist_out.read_bytes() == base_out.read_bytes()
    counts = _ledger_key_counts(queue)
    assert counts[hang_key] == 2                # died once, rescued once
    for job in jobs[1:]:
        assert counts[job.key()] == 1           # nobody else re-ran
    done = queue.done_record(hang_key)
    assert done.status == "ok" and done.attempts == 2
    assert done.worker.startswith("coordinator-")


def test_cli_since_spec_executes_precisely_the_delta(tmp_path):
    spec_a = tmp_path / "a.toml"
    spec_b = tmp_path / "b.toml"
    workloads = ["ligra.pagerank", "ligra.bfs"]
    spec_a.write_text(_axis_spec_toml("delta-a", [256, 512], workloads,
                                      accesses=400), encoding="utf-8")
    spec_b.write_text(_axis_spec_toml("delta-b", [512, 1024], workloads,
                                      accesses=400), encoding="utf-8")
    expected = diff_specs(ExperimentSpec.from_file(spec_b),
                          ExperimentSpec.from_file(spec_a))
    assert len(expected.changed) == 2 and len(expected.unchanged) == 2

    out = tmp_path / "out.json"
    outcomes_path = tmp_path / "outcomes.json"
    completed = subprocess.run(
        _sweep_cmd(spec_b, tmp_path / "cache", out,
                   "--since-spec", str(spec_a),
                   "--outcomes", str(outcomes_path)),
        check=True, env=_cli_env(), capture_output=True,
        timeout=scaled(300.0))
    assert b"delta: 2 changed of 4 job(s)" in completed.stderr

    doc = json.loads(out.read_text())
    assert doc["jobs"] == 2                     # only the delta ran
    assert doc["delta"]["changed"] == 2
    assert doc["delta"]["unchanged"] == 2
    assert doc["delta"]["removed"] == 2
    assert doc["delta"]["changed_keys"] == \
        [job.key() for job in expected.changed]
    ledger = json.loads(outcomes_path.read_text())
    assert ledger["jobs"] == 2
    assert sorted(o["key"] for o in ledger["outcomes"]) == \
        sorted(job.key() for job in expected.changed)


# --------------------------------------------------------------------- #
# Stats surfaces
# --------------------------------------------------------------------- #

def test_service_stats_expose_shard_and_lease_counters(tmp_path):
    jobs = _jobs(2)
    outcomes = DistributedBackend(tmp_path).run_outcomes(jobs)
    assert all(o.ok for o in outcomes)
    from repro.service import SimService
    service = SimService(cache_dir=tmp_path)
    try:
        doc = service.stats()
        assert doc["cache"]["layout"] == CACHE_LAYOUT_VERSION
        assert doc["cache"]["shards"] >= 1
        dist = doc["distributed"]
        assert dist["published"] == 2 and dist["done"] == 2
        assert dist["closed"] is True
        json.dumps(doc)
    finally:
        service.close()
