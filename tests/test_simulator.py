"""Unit tests for the configuration dataclasses and single-core simulator."""

import pytest

from repro.core.hermes import HermesConfig
from repro.offchip.popet import POPET
from repro.sim.config import SystemConfig
from repro.sim.simulator import build_system, simulate_suite, simulate_trace
from repro.workloads.suite import make_trace


def test_named_configs_validate():
    for config in (SystemConfig.no_prefetching(), SystemConfig.baseline("pythia"),
                   SystemConfig.with_hermes("popet", prefetcher="pythia"),
                   SystemConfig.with_hermes("hmp", optimistic=False)):
        config.validate()


def test_hermes_requires_predictor():
    config = SystemConfig(offchip_predictor=None, hermes=HermesConfig())
    with pytest.raises(ValueError):
        config.validate()


def test_warmup_fraction_bounds():
    with pytest.raises(ValueError):
        SystemConfig(warmup_fraction=1.0).validate()


def test_sweep_helpers_produce_new_labels():
    base = SystemConfig.baseline("pythia")
    assert base.with_rob_size(256).core.rob_size == 256
    assert base.with_llc_size_mb(6).hierarchy.llc.size_bytes == 6 * 1024 * 1024
    assert base.with_llc_latency(65).hierarchy.llc.latency == 65
    assert base.with_memory_bandwidth(800).dram.transfer_rate_mtps == 800
    hermes = SystemConfig.with_hermes("popet").with_hermes_issue_latency(24)
    assert hermes.hermes.issue_latency == 24
    # Sweeps must not mutate the original configuration.
    assert base.core.rob_size == 512
    assert base.dram.transfer_rate_mtps == 3200


def test_build_system_wiring():
    system = build_system(SystemConfig.with_hermes("popet", prefetcher="pythia"))
    assert system.hermes is not None
    assert system.predictor is not None
    assert system.hierarchy.prefetcher is not None
    assert system.core.hermes is system.hermes
    assert system.hermes.memory_controller is system.memory_controller


def test_build_system_without_hermes():
    system = build_system(SystemConfig.baseline("pythia"))
    assert system.hermes is None
    assert system.predictor is None


def test_build_system_binds_ideal_oracle():
    system = build_system(SystemConfig.with_hermes("ideal"))
    context_free_probe = system.predictor._oracle
    assert context_free_probe is not None


def test_simulate_trace_returns_populated_result(small_irregular_trace):
    result = simulate_trace(SystemConfig.with_hermes("popet", prefetcher="pythia"),
                            small_irregular_trace)
    assert result.workload == small_irregular_trace.name
    assert result.category == small_irregular_trace.category
    assert result.ipc > 0
    assert result.core.loads > 0
    assert result.hierarchy["loads"] > 0
    assert result.memory_controller["hermes_requests"] > 0
    assert 0.0 <= result.predictor_accuracy <= 1.0
    assert 0.0 <= result.predictor_coverage <= 1.0
    row = result.as_dict()
    assert row["workload"] == small_irregular_trace.name


def test_simulate_trace_is_deterministic(small_graph_trace):
    config = SystemConfig.with_hermes("popet", prefetcher="pythia")
    first = simulate_trace(config, small_graph_trace)
    second = simulate_trace(config, small_graph_trace)
    assert first.ipc == pytest.approx(second.ipc)
    assert first.core.offchip_loads == second.core.offchip_loads


def test_simulate_trace_with_injected_predictor(small_irregular_trace):
    predictor = POPET.with_features(["pc_first_access"])
    result = simulate_trace(SystemConfig.with_hermes("popet"), small_irregular_trace,
                            predictor=predictor)
    assert predictor.stats.predictions > 0
    assert result.predictor == predictor.stats.as_dict()


def test_simulate_trace_max_accesses(small_irregular_trace):
    result = simulate_trace(SystemConfig.no_prefetching(), small_irregular_trace,
                            max_accesses=500)
    assert result.core.memory_instructions <= 500


def test_warmup_excludes_statistics(small_irregular_trace):
    cold = simulate_trace(SystemConfig.no_prefetching().with_label("w0"),
                          small_irregular_trace)
    # With warmup disabled the measured region includes the cold-start misses,
    # so the off-chip load count must be at least as high.
    import dataclasses
    no_warmup = dataclasses.replace(SystemConfig.no_prefetching(), warmup_fraction=0.0)
    full = simulate_trace(no_warmup, small_irregular_trace)
    assert full.core.memory_instructions > cold.core.memory_instructions
    assert full.core.offchip_loads >= cold.core.offchip_loads


def test_simulate_suite_runs_every_trace(small_irregular_trace, small_streaming_trace):
    results = simulate_suite(SystemConfig.no_prefetching(),
                             [small_irregular_trace, small_streaming_trace])
    assert [r.workload for r in results] == [small_irregular_trace.name,
                                             small_streaming_trace.name]
