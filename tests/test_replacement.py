"""Unit tests for cache replacement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.replacement import (
    LRUPolicy,
    RandomPolicy,
    SHiPPolicy,
    SRRIPPolicy,
    make_replacement_policy,
)


@pytest.mark.parametrize("name", ["lru", "random", "srrip", "ship"])
def test_factory_builds_every_policy(name):
    policy = make_replacement_policy(name, num_sets=4, num_ways=4)
    assert policy.num_sets == 4
    assert policy.num_ways == 4


def test_factory_rejects_unknown_policy():
    with pytest.raises(ValueError):
        make_replacement_policy("belady", 4, 4)


def test_policies_reject_bad_geometry():
    with pytest.raises(ValueError):
        LRUPolicy(0, 4)
    with pytest.raises(ValueError):
        LRUPolicy(4, 0)


def test_lru_prefers_invalid_way():
    policy = LRUPolicy(1, 4)
    assert policy.victim(0, [True, False, True, True]) == 1


def test_lru_evicts_least_recently_used():
    policy = LRUPolicy(1, 3)
    for way in range(3):
        policy.on_fill(0, way, pc=way, address=way * 64)
    policy.on_hit(0, 0, pc=0, address=0)
    assert policy.victim(0, [True, True, True]) == 1


def test_srrip_hit_promotes_block():
    policy = SRRIPPolicy(1, 2)
    policy.on_fill(0, 0, pc=1, address=0)
    policy.on_fill(0, 1, pc=2, address=64)
    policy.on_hit(0, 0, pc=1, address=0)
    # Way 0 was promoted to RRPV 0, so way 1 should be evicted.
    assert policy.victim(0, [True, True]) == 1


def test_ship_untrained_signature_inserts_with_near_rrpv():
    policy = SHiPPolicy(1, 2)
    policy.on_fill(0, 0, pc=0x400, address=0)
    # Policy state is flat: slot = set_index * ways + way.
    assert policy._rrpv[0] == SHiPPolicy.MAX_RRPV - 1


def test_ship_learns_dead_signature():
    policy = SHiPPolicy(1, 2)
    pc = 0x404
    # Fill and evict the same signature repeatedly without reuse.
    for _ in range(3):
        policy.on_fill(0, 0, pc=pc, address=0)
        policy.on_eviction(0, 0, address=0, was_reused=False)
    policy.on_fill(0, 0, pc=pc, address=0)
    # The signature's counter reached zero: insertion is distant (evict-first).
    assert policy._rrpv[0] == SHiPPolicy.MAX_RRPV


def test_ship_reused_signature_keeps_near_insertion():
    policy = SHiPPolicy(1, 2)
    pc = 0x408
    policy.on_fill(0, 0, pc=pc, address=0)
    policy.on_hit(0, 0, pc=pc, address=0)
    policy.on_fill(0, 1, pc=pc, address=64)
    assert policy._rrpv[1] == SHiPPolicy.MAX_RRPV - 1


def test_random_policy_is_deterministic_with_seed():
    a = RandomPolicy(1, 8, seed=3)
    b = RandomPolicy(1, 8, seed=3)
    valid = [True] * 8
    assert [a.victim(0, valid) for _ in range(10)] == [b.victim(0, valid) for _ in range(10)]


@pytest.mark.parametrize("name", ["lru", "srrip", "ship", "random"])
@given(data=st.data())
def test_victim_always_in_range(name, data):
    ways = data.draw(st.integers(min_value=1, max_value=8))
    policy = make_replacement_policy(name, num_sets=2, num_ways=ways)
    valid = data.draw(st.lists(st.booleans(), min_size=ways, max_size=ways))
    operations = data.draw(st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, ways - 1), st.integers(0, 1 << 20)),
        max_size=20))
    for kind, way, address in operations:
        if kind == 0:
            policy.on_fill(0, way, pc=address, address=address * 64)
        else:
            policy.on_hit(0, way, pc=address, address=address * 64)
    victim = policy.victim(0, valid)
    assert 0 <= victim < ways
    # When an invalid way exists, it must be preferred.
    if not all(valid):
        assert valid[victim] is False
