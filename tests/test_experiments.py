"""Tests for the experiment runners (small sizes; shape checks only)."""

import pytest

from repro.experiments import (
    ExperimentSetup,
    run_fig02_offchip_loads,
    run_fig03_stall_cycles,
    run_fig05_offchip_rate,
    run_fig09_accuracy_coverage,
    run_fig10_feature_ablation,
    run_fig16_multicore,
    run_fig17c_issue_latency_sensitivity,
    run_table3_storage,
    run_table6_storage,
)

#: Deliberately tiny: these tests check structure, not convergence.
TINY = ExperimentSetup(num_accesses=2500, per_category=1, categories=["SPEC06", "Ligra"])


def test_table3_storage_matches_paper():
    table = run_table3_storage()
    assert table["total_kb"] == pytest.approx(4.0, abs=0.25)
    assert set(table) == {"weight_tables_kb", "page_buffer_kb", "lq_metadata_kb",
                          "total_kb"}


def test_table6_popet_is_smallest_learning_mechanism():
    table = run_table6_storage()
    assert table["Hermes (POPET)"] < table["pythia"]
    assert table["Hermes (POPET)"] < table["bingo"]
    assert table["Hermes (POPET)"] < table["TTP"]
    assert table["TTP"] == max(table.values())


def test_fig02_structure():
    table = run_fig02_offchip_loads(TINY)
    assert "AVG" in table
    for row in table.values():
        assert set(row) >= {"noprefetch_blocking", "pythia_blocking", "noprefetch_mpki"}
        # Normalised to the no-prefetching system's off-chip loads.
        assert row["noprefetch_blocking"] + row["noprefetch_nonblocking"] == pytest.approx(
            1.0, abs=1e-6)


def test_fig03_stall_cycles_have_onchip_component():
    table = run_fig03_stall_cycles(TINY)
    avg = table["AVG"]
    assert avg["stall_cycles_per_offchip_load"] > 0
    assert 0.0 < avg["onchip_share"] <= 1.0


def test_fig05_offchip_rate_is_a_minority_of_loads():
    table = run_fig05_offchip_rate(TINY)
    assert 0.0 < table["AVG"]["offchip_load_fraction"] < 0.6
    assert table["AVG"]["llc_mpki"] > 0


def test_fig09_popet_beats_hmp():
    table = run_fig09_accuracy_coverage(TINY, predictors=("hmp", "popet"))
    assert table["popet"]["AVG"]["accuracy"] > table["hmp"]["AVG"]["accuracy"]
    assert table["popet"]["AVG"]["coverage"] > table["hmp"]["AVG"]["coverage"]


def test_fig10_all_features_at_least_match_single_feature_coverage():
    table = run_fig10_feature_ablation(
        ExperimentSetup(num_accesses=2500, per_category=1, categories=["SPEC06"]))
    assert "All (POPET)" in table
    assert all(set(row) == {"accuracy", "coverage"} for row in table.values())


def test_fig16_multicore_hermes_beats_pythia():
    table = run_fig16_multicore(num_cores=2, num_mixes=1, num_accesses=1500,
                                predictors=("popet",))
    assert table["pythia+hermes-popet"] > 0.9 * table["pythia"]


def test_fig17c_issue_latency_monotonic_tendency():
    table = run_fig17c_issue_latency_sensitivity(TINY, latencies=(0, 24))
    assert table[0]["pythia+hermes"] >= table[24]["pythia+hermes"] - 0.05
