"""Unit tests for the multi-level cache hierarchy."""

import pytest

from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig
from repro.prefetchers.base import NextLinePrefetcher


def make_hierarchy(prefetcher=None):
    return CacheHierarchy(prefetcher=prefetcher)


def test_default_config_matches_table4():
    config = HierarchyConfig()
    assert config.l1d.size_bytes == 48 * 1024
    assert config.l1d.latency == 5
    assert config.l2.size_bytes == 1280 * 1024
    assert config.l2.latency == 15
    assert config.llc.size_bytes == 3 * 1024 * 1024
    assert config.llc.latency == 55
    assert config.llc.replacement == "ship"
    assert config.onchip_miss_latency == 75
    assert config.post_l1_latency == 70


def test_cold_load_goes_offchip_and_fills_all_levels():
    hierarchy = make_hierarchy()
    outcome = hierarchy.load(0x100000, pc=0x400, cycle=0)
    assert outcome.went_offchip
    assert outcome.served_by == "DRAM"
    assert outcome.onchip_latency == hierarchy.onchip_miss_latency
    assert outcome.latency > hierarchy.onchip_miss_latency
    # The block is now resident everywhere.
    assert hierarchy.l1d.probe(0x100000)
    assert hierarchy.l2.probe(0x100000)
    assert hierarchy.llc.probe(0x100000)


def test_l1_hit_after_fill():
    hierarchy = make_hierarchy()
    hierarchy.load(0x100000, pc=0x400, cycle=0)
    outcome = hierarchy.load(0x100008, pc=0x400, cycle=1000)
    assert not outcome.went_offchip
    assert outcome.served_by == "L1D"
    assert outcome.latency == hierarchy.l1d.latency


def test_l2_hit_when_l1_evicted():
    hierarchy = make_hierarchy()
    hierarchy.load(0x100000, pc=0x400, cycle=0)
    hierarchy.l1d.invalidate(0x100000)
    outcome = hierarchy.load(0x100000, pc=0x400, cycle=1000)
    assert outcome.served_by == "L2"
    assert outcome.latency == hierarchy.l1d.latency + hierarchy.l2.latency


def test_llc_hit_when_l1_l2_evicted():
    hierarchy = make_hierarchy()
    hierarchy.load(0x100000, pc=0x400, cycle=0)
    hierarchy.l1d.invalidate(0x100000)
    hierarchy.l2.invalidate(0x100000)
    outcome = hierarchy.load(0x100000, pc=0x400, cycle=1000)
    assert outcome.served_by == "LLC"
    assert outcome.latency == hierarchy.onchip_miss_latency


def test_hermes_wait_hides_onchip_latency():
    hierarchy = make_hierarchy()
    # Simulate a Hermes request that completes shortly after the on-chip miss
    # is discovered; the load should complete at the Hermes-ready cycle.
    hermes_ready = 120
    outcome = hierarchy.load(0x200000, pc=0x400, cycle=0, hermes_ready=hermes_ready)
    assert outcome.went_offchip
    assert outcome.hermes_used
    assert outcome.completion_cycle == max(hierarchy.onchip_miss_latency, hermes_ready)
    assert hierarchy.stats.hermes_waits == 1


def test_hermes_wait_never_earlier_than_llc_miss_detection():
    hierarchy = make_hierarchy()
    outcome = hierarchy.load(0x300000, pc=0x400, cycle=0, hermes_ready=10)
    assert outcome.completion_cycle >= hierarchy.onchip_miss_latency


def test_baseline_offchip_slower_than_hermes_offchip():
    baseline = make_hierarchy()
    with_hermes = make_hierarchy()
    plain = baseline.load(0x400000, pc=0x400, cycle=0)
    hermes_ready = with_hermes.memory_controller.access(0x400000, 10)
    assisted = with_hermes.load(0x400000, pc=0x400, cycle=0, hermes_ready=hermes_ready)
    assert assisted.latency < plain.latency


def test_mshr_merge_on_back_to_back_misses():
    hierarchy = make_hierarchy()
    # LoadOutcome is a reused record: copy the field before the next load.
    first_completion = hierarchy.load(0x500000, pc=0x400, cycle=0).completion_cycle
    merged = hierarchy.load(0x500008, pc=0x404, cycle=1)
    assert merged.served_by == "MSHR"
    assert merged.completion_cycle <= first_completion
    assert not merged.went_offchip


def test_store_allocates_into_hierarchy():
    hierarchy = make_hierarchy()
    hierarchy.store(0x600000, pc=0x400, cycle=0)
    assert hierarchy.l1d.probe(0x600000)
    assert hierarchy.stats.stores == 1


def test_would_go_offchip_oracle():
    hierarchy = make_hierarchy()
    assert hierarchy.would_go_offchip(0x700000, cycle=0)
    hierarchy.load(0x700000, pc=0x400, cycle=0)
    assert not hierarchy.would_go_offchip(0x700000, cycle=1000)


def test_prefetcher_reduces_offchip_loads_on_stream():
    plain = make_hierarchy()
    prefetching = make_hierarchy(prefetcher=NextLinePrefetcher(degree=4))
    base = 0x800000
    cycle = 0
    for index in range(256):
        address = base + index * 64
        plain.load(address, pc=0x400, cycle=cycle)
        prefetching.load(address, pc=0x400, cycle=cycle)
        cycle += 200
    assert prefetching.stats.offchip_loads < plain.stats.offchip_loads
    assert prefetching.stats.llc_prefetch_issued > 0


def test_llc_mpki_metric():
    hierarchy = make_hierarchy()
    hierarchy.load(0x900000, pc=0x400, cycle=0)
    assert hierarchy.llc_mpki(1000) == pytest.approx(1.0)
    assert hierarchy.llc_mpki(0) == 0.0


def test_shared_llc_between_two_hierarchies():
    shared = make_hierarchy()
    other = CacheHierarchy(llc=shared.llc, memory_controller=shared.memory_controller)
    shared.load(0xA00000, pc=0x400, cycle=0)
    # The second core misses its private L1/L2 but hits the shared LLC.
    outcome = other.load(0xA00000, pc=0x400, cycle=1000)
    assert outcome.served_by == "LLC"
    assert not outcome.went_offchip
