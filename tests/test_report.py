"""Tests of the report subsystem: schema, adapters, renderers, CLI.

Covers the contracts DESIGN.md §10 promises:

* strict ``FigureResult`` round-trips under ``REPORT_SCHEMA_VERSION``;
* the five payload-shape normalizers behind the 24 figure adapters;
* byte-stable renderers (golden SVG files for one bar and one line
  chart — regenerate them with
  ``python tests/test_report.py --write-golden`` after an intentional
  renderer change, and say so in the PR);
* ``repro sweep --figure`` and the report path serializing payloads
  identically (the canonicalization bugfix);
* ``repro report`` end to end, including warm-cache re-runs;
* the generated EXPERIMENTS.md figure index being in sync.
"""

from __future__ import annotations

import csv
import io
import json
import os
import subprocess
import sys
import xml.etree.ElementTree as ET
from pathlib import Path

import pytest

from repro.report import (
    REPORT_SCHEMA_VERSION,
    FigureResult,
    ReportSchemaError,
    canonical_payload,
    figure_ids,
    get_figure,
)
from repro.report.figures import FIGURE_RUNNERS
from repro.report.renderers import make_renderer, renderer_names
from repro.report.schema import x_label_of
from repro.registry import UnknownComponentError

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def run_cli(*args: str, expect_rc: int = 0) -> subprocess.CompletedProcess:
    """Invoke ``python -m repro`` with src on the path."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, env=env, timeout=300)
    assert proc.returncode == expect_rc, (
        f"rc={proc.returncode}, stderr:\n{proc.stderr.decode()}")
    return proc


# ---------------------------------------------------------------------- #
# Deterministic fixture figures (also the golden-SVG sources)
# ---------------------------------------------------------------------- #

def bar_fixture() -> FigureResult:
    """A small grouped-bar figure with a hole (sparse Fig. 4 shape)."""
    return FigureResult.build(
        figure_id="figXX", title="Golden bar fixture", chart="bar",
        x_label="category", y_label="speedup",
        cells=[("pythia", "SPEC06", 1.25), ("pythia", "Ligra", 1.5),
               ("pythia+hermes", "SPEC06", 1.4),
               ("hermes", "Ligra", 1.1)],
        payload={"SPEC06": {"pythia": 1.25, "pythia+hermes": 1.4},
                 "Ligra": {"pythia": 1.5, "hermes": 1.1}})


def line_fixture() -> FigureResult:
    """A two-series line figure over a numeric x axis."""
    return FigureResult.build(
        figure_id="figYY", title="Golden line fixture", chart="line",
        x_label="ROB size", y_label="speedup",
        cells=[("pythia", "256", 1.2), ("pythia", "512", 1.25),
               ("pythia", "1024", 1.27),
               ("pythia+hermes", "256", 1.3), ("pythia+hermes", "512", 1.38),
               ("pythia+hermes", "1024", 1.41)],
        payload={256: {"pythia": 1.2, "pythia+hermes": 1.3},
                 512: {"pythia": 1.25, "pythia+hermes": 1.38},
                 1024: {"pythia": 1.27, "pythia+hermes": 1.41}})


# ---------------------------------------------------------------------- #
# Schema
# ---------------------------------------------------------------------- #

class TestSchema:
    def test_build_orders_and_derives(self):
        result = bar_fixture()
        assert result.series == ["pythia", "pythia+hermes", "hermes"]
        assert result.x_values == ["SPEC06", "Ligra"]
        # Cells re-sorted by (series rank, x rank).
        assert result.cells[0] == ("pythia", "SPEC06", 1.25)
        assert result.derived["pythia.mean"] == pytest.approx(1.375)
        assert result.derived["pythia.geomean"] == pytest.approx(
            (1.25 * 1.5) ** 0.5)

    def test_geomean_absent_for_nonpositive_series(self):
        result = FigureResult.build(
            figure_id="f", title="t", chart="bar", x_label="x", y_label="y",
            cells=[("s", "a", -1.0), ("s", "b", 2.0)], payload={})
        assert "s.mean" in result.derived
        assert "s.geomean" not in result.derived

    def test_round_trip_in_memory_and_through_json(self):
        for result in (bar_fixture(), line_fixture()):
            assert FigureResult.from_dict(result.to_dict()) == result
            reloaded = FigureResult.from_dict(json.loads(result.to_json()))
            assert reloaded == result

    def test_from_dict_rejects_unknown_key(self):
        document = bar_fixture().to_dict()
        document["surprise"] = 1
        with pytest.raises(ReportSchemaError, match="unknown"):
            FigureResult.from_dict(document)

    def test_from_dict_rejects_missing_key(self):
        document = bar_fixture().to_dict()
        del document["cells"]
        with pytest.raises(ReportSchemaError, match="missing"):
            FigureResult.from_dict(document)

    def test_from_dict_rejects_version_mismatch(self):
        document = bar_fixture().to_dict()
        document["schema_version"] = REPORT_SCHEMA_VERSION + 1
        with pytest.raises(ReportSchemaError, match="version"):
            FigureResult.from_dict(document)

    def test_from_dict_rejects_malformed_cell(self):
        document = bar_fixture().to_dict()
        document["cells"] = [["series-only"]]
        with pytest.raises(ReportSchemaError, match="malformed cell"):
            FigureResult.from_dict(document)

    def test_canonical_payload_stringifies_keys_like_json(self):
        payload = {800: {"a": 1.5}, 1600: {"a": 2.0}}
        canonical = canonical_payload(payload)
        assert set(canonical) == {"800", "1600"}
        # Idempotent, and JSON-equal to the raw payload's dump.
        assert canonical_payload(canonical) == canonical
        assert canonical == json.loads(
            json.dumps(payload, sort_keys=True, default=str))
        # The very bug canonicalization fixes: dumping the *raw* payload
        # orders int keys numerically (800 before 1600) while every
        # later dump of the parsed document orders the string keys
        # lexicographically ("1600" before "800") — so the raw dump is
        # not stable under a read-back/re-write cycle, the canonical
        # one is.
        raw_dump = json.dumps(payload, sort_keys=True, default=str)
        canonical_dump = json.dumps(canonical, sort_keys=True, default=str)
        assert raw_dump != canonical_dump
        assert json.dumps(json.loads(canonical_dump), sort_keys=True,
                          default=str) == canonical_dump

    def test_x_label_of_matches_json_key_semantics(self):
        assert x_label_of("a") == "a"
        assert x_label_of(800) == "800"
        assert x_label_of(3.0) == "3.0"
        assert x_label_of(-22) == "-22"
        assert x_label_of(True) == "true"

    def test_sparse_value_lookup(self):
        result = bar_fixture()
        assert result.value("hermes", "SPEC06") is None
        assert result.value("hermes", "Ligra") == pytest.approx(1.1)


# ---------------------------------------------------------------------- #
# Figure catalogue + normalizers
# ---------------------------------------------------------------------- #

class TestFigureCatalogue:
    def test_all_24_figures_registered_in_paper_order(self):
        ids = figure_ids()
        assert len(ids) == 24
        assert ids[0] == "fig02" and ids[-1] == "table6"
        assert FIGURE_RUNNERS == {fid: get_figure(fid).runner_name
                                  for fid in ids}

    def test_runners_exist_and_benchmarks_exist(self):
        import repro.experiments as experiments
        for fid in figure_ids():
            spec = get_figure(fid)
            assert callable(getattr(experiments, spec.runner_name))
            assert (REPO_ROOT / "benchmarks" / spec.benchmark).is_file()

    def test_unknown_figure_is_loud(self):
        with pytest.raises(UnknownComponentError, match="fig99"):
            get_figure("fig99")

    def test_flat_normalizer(self):
        result = get_figure("fig14").normalize(
            {"pythia": 1.2, "pythia+hermes-popet": 1.4})
        assert result.series == ["speedup"]
        assert result.value("speedup", "pythia+hermes-popet") == 1.4

    def test_xs_normalizer_with_int_keys(self):
        result = get_figure("fig17e").normalize(
            {-30: {"accuracy": 0.5, "speedup": 1.1},
             -2: {"accuracy": 0.7, "speedup": 1.2}})
        assert result.x_values == ["-30", "-2"]
        assert result.value("accuracy", "-2") == pytest.approx(0.7)
        # Payload canonicalized: int keys already JSON strings.
        assert set(result.payload) == {"-30", "-2"}
        assert FigureResult.from_dict(
            json.loads(result.to_json())) == result

    def test_sx_normalizer(self):
        result = get_figure("fig12").normalize(
            {"hermes-O": {"SPEC06": 1.1, "GEOMEAN": 1.12},
             "pythia": {"SPEC06": 1.3, "GEOMEAN": 1.28}})
        assert result.series == ["hermes-O", "pythia"]
        assert result.x_values == ["SPEC06", "GEOMEAN"]

    def test_nested_xs_normalizer_foregrounds_chart_metric(self):
        payload = {
            "w1": {"featA": {"accuracy": 0.8, "coverage": 0.5},
                   "featB": {"accuracy": 0.6, "coverage": 0.7}},
            "w2": {"featA": {"accuracy": 0.7, "coverage": 0.4},
                   "featB": {"accuracy": 0.9, "coverage": 0.6}},
        }
        result = get_figure("fig11").normalize(payload)
        assert "featA.accuracy" in result.series
        assert "featA.coverage" in result.series
        assert result.chart_series == ["featA.accuracy", "featB.accuracy"]
        assert result.charted_series() == result.chart_series

    def test_nested_sx_normalizer(self):
        result = get_figure("fig09").normalize(
            {"popet": {"SPEC06": {"accuracy": 0.9, "coverage": 0.8}},
             "hmp": {"SPEC06": {"accuracy": 0.6, "coverage": 0.5}}})
        assert result.series == ["popet.accuracy", "popet.coverage",
                                 "hmp.accuracy", "hmp.coverage"]
        assert result.x_values == ["SPEC06"]


# ---------------------------------------------------------------------- #
# Renderers
# ---------------------------------------------------------------------- #

class TestRenderers:
    def test_registry_has_the_three_builtins(self):
        assert renderer_names() == ["csv", "markdown", "svg"]

    def test_markdown_table_and_hole(self):
        text = make_renderer("markdown").render(bar_fixture())
        assert "# figXX — Golden bar fixture" in text
        assert "| category | pythia | pythia+hermes | hermes |" in text
        assert "—" in text  # the sparse hermes/SPEC06 cell
        assert "## Derived metrics" in text

    def test_csv_parses_and_preserves_holes(self):
        text = make_renderer("csv").render(bar_fixture())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["category", "pythia", "pythia+hermes", "hermes"]
        assert rows[1] == ["SPEC06", "1.25", "1.4", ""]
        assert rows[2] == ["Ligra", "1.5", "", "1.1"]

    def test_svg_is_well_formed_with_expected_marks(self):
        for fixture, mark, count in ((bar_fixture(), "rect", 4),
                                     (line_fixture(), "circle", 6)):
            text = make_renderer("svg").render(fixture)
            root = ET.fromstring(text)
            ns = "{http://www.w3.org/2000/svg}"
            marks = [el for el in root.iter(f"{ns}{mark}")
                     if el.find(f"{ns}title") is not None]
            assert len(marks) == count, fixture.figure_id

    @pytest.mark.parametrize("name,fixture", [
        ("report_bar.svg", bar_fixture),
        ("report_line.svg", line_fixture),
    ])
    def test_golden_svg_byte_identical(self, name, fixture):
        golden = GOLDEN_DIR / name
        rendered = make_renderer("svg").render(fixture())
        assert golden.is_file(), (
            f"golden file {golden} missing; regenerate with "
            f"python tests/test_report.py --write-golden")
        assert rendered == golden.read_text(encoding="utf-8"), (
            f"{name} drifted; if the renderer change is intentional, "
            f"regenerate with python tests/test_report.py --write-golden "
            f"and say so in the PR")

    def test_rendering_is_deterministic(self):
        svg = make_renderer("svg")
        assert svg.render(line_fixture()) == svg.render(line_fixture())


# ---------------------------------------------------------------------- #
# sweep --figure <-> report serialization identity (the PR 5 bugfix)
# ---------------------------------------------------------------------- #

class TestSweepReportSerializationIdentity:
    def test_table3_round_trips_without_loss(self, tmp_path):
        out = tmp_path / "table3.json"
        run_cli("sweep", "--figure", "table3", "--output", str(out))
        sweep_payload = json.loads(out.read_text())["result"]
        from repro.experiments import run_table3_storage
        result = get_figure("table3").normalize(run_table3_storage())
        assert result.payload == sweep_payload
        assert FigureResult.from_dict(
            json.loads(result.to_json())).payload == sweep_payload

    def test_int_axis_payloads_serialize_identically(self):
        # The regression: sweep dumped raw int keys (numeric sort) while
        # the report dumped canonical string keys (lexicographic sort),
        # so the same figure serialized differently on the two paths.
        payload = {-30: {"s": 1.0}, -2: {"s": 2.0}, -22: {"s": 3.0}}
        via_report = get_figure("fig17e").normalize(payload).payload
        via_sweep = canonical_payload(payload)  # what cmd_sweep now emits
        dump = lambda p: json.dumps(p, indent=2, sort_keys=True, default=str)
        assert dump(via_report) == dump(via_sweep)
        assert dump(canonical_payload(via_sweep)) == dump(via_sweep)


# ---------------------------------------------------------------------- #
# generate_report + repro report CLI
# ---------------------------------------------------------------------- #

class TestGenerateReport:
    def test_two_figures_end_to_end_then_warm_cache(self, tmp_path):
        from repro.experiments.common import ExperimentSetup
        from repro.report.generate import generate_report
        setup = ExperimentSetup(num_accesses=600, per_category=1,
                                result_cache_dir=tmp_path / "cache")
        out = tmp_path / "report"
        summary = generate_report(["table3", "fig05"], out_dir=out,
                                  setup=setup)
        assert summary.cache_misses > 0 and summary.cache_hits == 0
        for fid in ("table3", "fig05"):
            for ext in ("md", "csv", "svg", "json"):
                assert (out / f"{fid}.{ext}").is_file()
        index = (out / "index.md").read_text()
        assert "(fig05.svg)" in index and "(table3.json)" in index
        document = json.loads((out / "fig05.json").read_text())
        assert FigureResult.from_dict(document).figure_id == "fig05"

        # Second run, same cache dir: no simulation executes.
        out2 = tmp_path / "report2"
        summary2 = generate_report(["table3", "fig05"], out_dir=out2,
                                   setup=setup)
        assert summary2.cache_misses == 0 and summary2.cache_hits > 0
        for artifact in summary.artifacts:
            for name, path in artifact.files.items():
                twin = out2 / path.name
                assert twin.read_bytes() == path.read_bytes(), path.name

    def test_cross_figure_job_sharing(self, tmp_path):
        # fig03 and fig05 both run the Pythia baseline suite; with a
        # shared cache the second figure is served from the first's jobs.
        from repro.experiments.common import ExperimentSetup
        from repro.report.generate import generate_report
        setup = ExperimentSetup(num_accesses=600, per_category=1,
                                result_cache_dir=tmp_path / "cache")
        summary = generate_report(["fig03", "fig05"],
                                  out_dir=tmp_path / "report", setup=setup)
        assert summary.cache_hits > 0

    def test_unknown_figure_fails_before_running(self, tmp_path):
        from repro.report.generate import generate_report
        with pytest.raises(UnknownComponentError):
            generate_report(["nope"], out_dir=tmp_path / "report")
        assert not (tmp_path / "report").exists()

    def test_empty_figure_list_is_an_error_not_everything(self, tmp_path):
        # A programmatically-built list that filtered down to nothing
        # must not silently launch the full 24-figure sweep.
        from repro.report.generate import generate_report
        with pytest.raises(ValueError, match="empty figure list"):
            generate_report([], out_dir=tmp_path / "report")
        assert not (tmp_path / "report").exists()

    def test_duplicate_figures_collapse_to_one_run(self, tmp_path):
        from repro.report.generate import generate_report
        summary = generate_report(["table3", "table3"],
                                  out_dir=tmp_path / "report")
        assert [a.figure_id for a in summary.artifacts] == ["table3"]
        index = (tmp_path / "report" / "index.md").read_text()
        assert index.count("| table3 |") == 1

    def test_api_report_mirrors_cli_knobs(self, tmp_path):
        from repro import api
        summary = api.report(["fig05"], out_dir=tmp_path / "report",
                             accesses=600, per_category=1,
                             categories=["Ligra"])
        document = json.loads(
            (tmp_path / "report" / "fig05.json").read_text())
        result = FigureResult.from_dict(document)
        assert result.x_values == ["Ligra", "AVG"]


class TestReportCLI:
    def test_smoke_two_figures(self, tmp_path):
        out_dir = tmp_path / "report"
        run_cli("report", "--figure", "table3,table6",
                "--out-dir", str(out_dir))
        names = sorted(path.name for path in out_dir.iterdir())
        assert names == ["index.md",
                         "table3.csv", "table3.json", "table3.md",
                         "table3.svg",
                         "table6.csv", "table6.json", "table6.md",
                         "table6.svg"]

    def test_formats_subset(self, tmp_path):
        out_dir = tmp_path / "report"
        run_cli("report", "--figure", "table3", "--formats", "csv",
                "--out-dir", str(out_dir))
        names = sorted(path.name for path in out_dir.iterdir())
        assert names == ["index.md", "table3.csv", "table3.json"]

    def test_unknown_figure_is_a_clean_error(self, tmp_path):
        proc = run_cli("report", "--figure", "fig99",
                       "--out-dir", str(tmp_path / "r"), expect_rc=2)
        stderr = proc.stderr.decode()
        assert "unknown figure" in stderr and "Traceback" not in stderr

    def test_no_selection_is_a_clean_error(self, tmp_path):
        proc = run_cli("report", "--out-dir", str(tmp_path / "r"),
                       expect_rc=2)
        assert "--all" in proc.stderr.decode()


# ---------------------------------------------------------------------- #
# Generated EXPERIMENTS.md index
# ---------------------------------------------------------------------- #

class TestExperimentsIndex:
    def test_committed_index_is_byte_identical_to_generated(self):
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            import gen_experiments_index
        finally:
            sys.path.pop(0)
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        assert gen_experiments_index.regenerate(text) == text, (
            "EXPERIMENTS.md figure index is stale; run "
            "python tools/gen_experiments_index.py")

    def test_check_mode_passes(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" /
                                 "gen_experiments_index.py"), "--check"],
            capture_output=True, timeout=60)
        assert proc.returncode == 0, proc.stderr.decode()


def _write_golden() -> None:
    """Regenerate the golden SVG fixtures (intentional renderer changes)."""
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    svg = make_renderer("svg")
    for name, fixture in (("report_bar.svg", bar_fixture),
                          ("report_line.svg", line_fixture)):
        (GOLDEN_DIR / name).write_text(svg.render(fixture()),
                                       encoding="utf-8")
        print(f"wrote {GOLDEN_DIR / name}")


if __name__ == "__main__":
    if "--write-golden" in sys.argv:
        _write_golden()
    else:
        raise SystemExit("usage: python tests/test_report.py --write-golden")
