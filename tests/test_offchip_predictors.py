"""Unit tests for the off-chip load predictors (POPET, HMP, TTP, oracle)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.offchip import (
    POPET,
    POPETConfig,
    AlwaysOffChipPredictor,
    HMPPredictor,
    IdealPredictor,
    LoadContext,
    NeverOffChipPredictor,
    RandomPredictor,
    TTPPredictor,
    available_predictors,
    make_predictor,
)
from repro.offchip.base import PredictorStats
from repro.offchip.features import FEATURE_NAMES, PageBuffer, SELECTED_FEATURES

ALL_NAMES = ["popet", "hmp", "ttp", "ideal", "always", "never", "random"]


def train_on_synthetic(predictor, num_loads=3000, offchip_pc=0x800, hit_pc=0x400,
                       offchip_fraction=0.2, seed=5):
    """Train a predictor on a PC-separable workload; return late-phase stats.

    Loads from ``offchip_pc`` always go off-chip, loads from ``hit_pc`` never
    do — the simplest structure every learning predictor must capture.
    """
    rng = random.Random(seed)
    late = PredictorStats()
    for index in range(num_loads):
        offchip = rng.random() < offchip_fraction
        pc = offchip_pc if offchip else hit_pc
        address = rng.randrange(1 << 20) * 64
        record = predictor.predict(LoadContext(pc=pc, address=address, cycle=index * 10))
        predictor.train(record, offchip)
        if index >= num_loads // 2:
            late.record(record.predicted_offchip, offchip)
    return late


# --------------------------------------------------------------------------- #
# Factory / interface
# --------------------------------------------------------------------------- #

def test_factory_builds_every_predictor():
    assert set(ALL_NAMES) <= set(available_predictors())
    for name in ALL_NAMES:
        assert make_predictor(name).name == name


def test_factory_rejects_unknown_name():
    with pytest.raises(KeyError, match="available"):
        make_predictor("oracle-9000")


def test_accuracy_and_coverage_formulas():
    stats = PredictorStats()
    # 3 TP, 1 FP, 1 FN, 5 TN.
    for predicted, actual in [(True, True)] * 3 + [(True, False)] + [(False, True)] \
            + [(False, False)] * 5:
        stats.record(predicted, actual)
    assert stats.accuracy == pytest.approx(3 / 4)
    assert stats.coverage == pytest.approx(3 / 4)
    assert stats.predictions == 10


def test_empty_stats_are_zero():
    stats = PredictorStats()
    assert stats.accuracy == 0.0
    assert stats.coverage == 0.0


# --------------------------------------------------------------------------- #
# Page buffer and features
# --------------------------------------------------------------------------- #

def test_page_buffer_first_access_semantics():
    buffer = PageBuffer(entries=2)
    assert buffer.first_access(0x1000)          # new page, new line
    assert not buffer.first_access(0x1000)      # same line again
    assert buffer.first_access(0x1040)          # different line, same page
    assert buffer.first_access(0x2000)
    assert buffer.first_access(0x3000)          # evicts the oldest page
    assert buffer.first_access(0x1000)          # page 1 was evicted -> first again


def test_page_buffer_storage_matches_table3():
    assert PageBuffer(64).storage_bits == 64 * 80


def test_selected_features_are_known():
    assert set(SELECTED_FEATURES) <= set(FEATURE_NAMES)
    assert len(SELECTED_FEATURES) == 5


# --------------------------------------------------------------------------- #
# POPET
# --------------------------------------------------------------------------- #

def test_popet_default_config_matches_table2():
    popet = POPET()
    assert popet.config.activation_threshold == -18
    assert popet.config.negative_training_threshold == -35
    assert popet.config.positive_training_threshold == 40
    assert [spec.name for spec in popet.features] == SELECTED_FEATURES


def test_popet_storage_is_about_4kb():
    breakdown = POPET().storage_breakdown()
    assert breakdown["total_kb"] == pytest.approx(4.0, abs=0.25)
    assert breakdown["weight_tables_kb"] < 4.0
    assert breakdown["page_buffer_kb"] == pytest.approx(0.625)


def test_popet_weights_stay_saturated_in_range():
    popet = POPET()
    rng = random.Random(1)
    for index in range(2000):
        context = LoadContext(pc=0x400, address=rng.randrange(1 << 16) * 64, cycle=index)
        record = popet.predict(context)
        popet.train(record, went_offchip=bool(index % 2))
    for low, high in popet.weight_summary().values():
        assert -16 <= low <= high <= 15


def test_popet_learns_pc_separable_offchip_behaviour():
    late = train_on_synthetic(POPET())
    assert late.accuracy > 0.85
    assert late.coverage > 0.85


def test_popet_learns_byte_offset_pattern():
    """Streaming pattern: only byte-offset-0 loads go off-chip (Section 6.1.3)."""
    popet = POPET()
    late = PredictorStats()
    num = 4000
    for index in range(num):
        address = 0x100000 + index * 8
        offchip = (address % 64) == 0
        record = popet.predict(LoadContext(pc=0x400, address=address, cycle=index))
        popet.train(record, offchip)
        if index >= num // 2:
            late.record(record.predicted_offchip, offchip)
    assert late.accuracy > 0.8
    assert late.coverage > 0.8


def test_popet_single_feature_variant():
    popet = POPET.with_features(["pc_first_access"])
    assert len(popet.features) == 1
    late = train_on_synthetic(popet)
    assert late.coverage > 0.5


def test_popet_rejects_empty_feature_list():
    with pytest.raises(ValueError):
        POPETConfig(feature_names=[]).validate()


def test_popet_rejects_unknown_feature():
    with pytest.raises(ValueError):
        POPET.with_features(["not_a_feature"])


def test_popet_rejects_inverted_training_thresholds():
    with pytest.raises(ValueError):
        POPETConfig(negative_training_threshold=50,
                    positive_training_threshold=-50).validate()


def test_popet_activation_threshold_trades_accuracy_for_coverage():
    """A higher (less negative) activation threshold predicts less -> coverage drops."""
    conservative = POPET(POPETConfig(activation_threshold=10))
    liberal = POPET(POPETConfig(activation_threshold=-30))
    late_conservative = train_on_synthetic(conservative, seed=9)
    late_liberal = train_on_synthetic(liberal, seed=9)
    assert late_liberal.coverage >= late_conservative.coverage


def test_popet_saturation_check_skips_training():
    popet = POPET()
    # Train the same always-off-chip context far past the positive threshold.
    for index in range(200):
        record = popet.predict(LoadContext(pc=0x800, address=0x5000, cycle=index))
        popet.train(record, went_offchip=True)
    assert popet.training_skipped_saturated > 0


# --------------------------------------------------------------------------- #
# HMP / TTP / simple predictors
# --------------------------------------------------------------------------- #

def test_hmp_learns_some_pc_separable_offchip_behaviour():
    """HMP's global-history components dilute its learning (paper: 47% acc, 22% cov)."""
    late = train_on_synthetic(HMPPredictor())
    assert late.coverage > 0.1
    assert late.accuracy > 0.4


def test_popet_beats_hmp_on_the_same_synthetic_workload():
    popet_late = train_on_synthetic(POPET(), seed=21)
    hmp_late = train_on_synthetic(HMPPredictor(), seed=21)
    assert popet_late.accuracy > hmp_late.accuracy
    assert popet_late.coverage > hmp_late.coverage


def test_hmp_storage_matches_table6_scale():
    assert HMPPredictor().storage_kb < 12.0


def test_ttp_has_high_coverage_on_large_footprints():
    late = train_on_synthetic(TTPPredictor(), offchip_fraction=0.3)
    assert late.coverage > 0.8


def test_ttp_storage_budget():
    assert TTPPredictor().storage_kb == pytest.approx(1536.0)
    assert TTPPredictor(metadata_budget_kb=64).capacity < TTPPredictor().capacity


def test_ttp_rejects_bad_budget():
    with pytest.raises(ValueError):
        TTPPredictor(metadata_budget_kb=0)


def test_ideal_predictor_uses_oracle():
    predictor = IdealPredictor()
    predictor.bind_oracle(lambda address, cycle: address >= 0x1000)
    low = predictor.predict(LoadContext(pc=1, address=0x500, cycle=0))
    high = predictor.predict(LoadContext(pc=1, address=0x2000, cycle=0))
    assert not low.predicted_offchip
    assert high.predicted_offchip


def test_ideal_predictor_requires_oracle():
    with pytest.raises(RuntimeError):
        IdealPredictor().predict(LoadContext(pc=1, address=0, cycle=0))


def test_always_never_random_predictors():
    context = LoadContext(pc=1, address=64, cycle=0)
    assert AlwaysOffChipPredictor().predict(context).predicted_offchip
    assert not NeverOffChipPredictor().predict(context).predicted_offchip
    rnd = RandomPredictor(probability=1.0)
    assert rnd.predict(context).predicted_offchip
    with pytest.raises(ValueError):
        RandomPredictor(probability=1.5)


# --------------------------------------------------------------------------- #
# Property-based invariants
# --------------------------------------------------------------------------- #

@settings(max_examples=20, deadline=None)
@given(st.sampled_from(["popet", "hmp", "ttp", "always", "never", "random"]),
       st.lists(st.tuples(st.integers(0, 1 << 16), st.integers(0, 1 << 22), st.booleans()),
                max_size=150))
def test_predict_train_never_crashes_and_counts_match(name, loads):
    predictor = make_predictor(name)
    for index, (pc, block, outcome) in enumerate(loads):
        record = predictor.predict(LoadContext(pc=pc * 4, address=block * 64, cycle=index))
        predictor.train(record, outcome)
    assert predictor.stats.predictions == len(loads)
    assert 0.0 <= predictor.stats.accuracy <= 1.0
    assert 0.0 <= predictor.stats.coverage <= 1.0


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 1 << 18)), min_size=10,
                max_size=200))
def test_popet_prediction_metadata_roundtrip(loads):
    popet = POPET()
    for index, (pc, block) in enumerate(loads):
        record = popet.predict(LoadContext(pc=0x400 + pc * 4, address=block * 64,
                                           cycle=index))
        metadata = record.metadata
        assert len(metadata.feature_indices) == len(popet.features)
        for table, feature_index in zip(popet.weights, metadata.feature_indices):
            assert 0 <= feature_index < len(table)
        popet.train(record, went_offchip=bool(block % 3 == 0))
