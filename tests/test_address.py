"""Unit tests for address manipulation helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.address import (
    BLOCK_SIZE,
    PAGE_SIZE,
    block_address,
    block_number,
    block_offset,
    byte_offset,
    cacheline_offset_in_page,
    fold_xor,
    hash_index,
    page_number,
    page_offset,
    word_offset,
)

addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)


def test_block_address_alignment():
    assert block_address(0) == 0
    assert block_address(63) == 0
    assert block_address(64) == 64
    assert block_address(0x1234) == 0x1200


def test_block_offset_and_byte_offset_agree():
    for address in (0, 1, 63, 64, 100, 0xFFFF):
        assert block_offset(address) == byte_offset(address)
        assert 0 <= block_offset(address) < BLOCK_SIZE


def test_word_offset_range():
    assert word_offset(0) == 0
    assert word_offset(8) == 1
    assert word_offset(63) == 7


def test_page_number_and_offset():
    assert page_number(PAGE_SIZE) == 1
    assert page_offset(PAGE_SIZE + 5) == 5
    assert cacheline_offset_in_page(PAGE_SIZE - 1) == 63


@given(addresses)
def test_block_decomposition_roundtrip(address):
    assert block_address(address) + block_offset(address) == address
    assert block_number(address) * BLOCK_SIZE == block_address(address)


@given(addresses)
def test_page_decomposition_roundtrip(address):
    assert page_number(address) * PAGE_SIZE + page_offset(address) == address


@given(addresses)
def test_cacheline_offset_in_page_bounds(address):
    assert 0 <= cacheline_offset_in_page(address) < PAGE_SIZE // BLOCK_SIZE


@given(st.integers(min_value=0, max_value=(1 << 63) - 1), st.integers(min_value=1, max_value=20))
def test_fold_xor_within_range(value, bits):
    assert 0 <= fold_xor(value, bits) < (1 << bits)


def test_fold_xor_rejects_bad_bits():
    with pytest.raises(ValueError):
        fold_xor(10, 0)


@given(addresses)
def test_hash_index_within_table(value):
    for size in (2, 128, 1024):
        assert 0 <= hash_index(value, size) < size


def test_hash_index_requires_power_of_two():
    with pytest.raises(ValueError):
        hash_index(5, 100)


def test_hash_index_is_deterministic():
    assert hash_index(0xDEADBEEF, 1024) == hash_index(0xDEADBEEF, 1024)
