"""Integration tests: end-to-end behaviour the paper's claims rest on.

These tests run small but complete simulations and check the *qualitative*
relationships of the paper (Hermes helps, POPET beats HMP, Hermes adds
little memory traffic, the Ideal study upper-bounds POPET, and so on).
"""

import pytest

from repro.analysis.metrics import geomean
from repro.sim.config import SystemConfig
from repro.sim.multicore import simulate_multicore
from repro.sim.simulator import simulate_trace
from repro.workloads.suite import make_trace, multicore_mixes

#: Irregular workloads where off-chip loads matter (the Hermes target domain).
IRREGULAR = ["spec06.mcf_chase", "parsec.canneal", "cvp.server_int", "ligra.pagerank"]
ACCESSES = 8000


@pytest.fixture(scope="module")
def irregular_traces():
    return [make_trace(name, num_accesses=ACCESSES) for name in IRREGULAR]


@pytest.fixture(scope="module")
def results(irregular_traces):
    """Run the four headline configurations once over the irregular traces."""
    configs = {
        "noprefetch": SystemConfig.no_prefetching(),
        "pythia": SystemConfig.baseline("pythia"),
        "hermes": SystemConfig.with_hermes("popet", prefetcher="none"),
        "pythia+hermes": SystemConfig.with_hermes("popet", prefetcher="pythia"),
        "pythia+ideal": SystemConfig.with_hermes("ideal", prefetcher="pythia"),
    }
    return {label: [simulate_trace(config, trace) for trace in irregular_traces]
            for label, config in configs.items()}


def _geomean_speedup(results, label, baseline="noprefetch"):
    pairs = zip(results[label], results[baseline])
    return geomean([a.ipc / b.ipc for a, b in pairs])


def test_hermes_improves_over_no_prefetching(results):
    assert _geomean_speedup(results, "hermes") > 1.02


def test_hermes_on_top_of_pythia_improves_over_pythia_alone(results):
    combined = _geomean_speedup(results, "pythia+hermes")
    pythia = _geomean_speedup(results, "pythia")
    assert combined > pythia


def test_ideal_hermes_upper_bounds_popet_hermes(results):
    ideal = _geomean_speedup(results, "pythia+ideal")
    popet = _geomean_speedup(results, "pythia+hermes")
    assert ideal >= popet * 0.99


def test_popet_accuracy_and_coverage_are_high_on_irregular_workloads(results):
    accuracies = [r.predictor_accuracy for r in results["pythia+hermes"]]
    coverages = [r.predictor_coverage for r in results["pythia+hermes"]]
    assert sum(accuracies) / len(accuracies) > 0.6
    assert sum(coverages) / len(coverages) > 0.7


def test_hermes_memory_overhead_is_much_lower_than_pythias(results):
    """Fig. 15(b): Hermes adds far fewer main-memory requests than Pythia."""
    def overhead(label):
        extra = []
        for run, base in zip(results[label], results["noprefetch"]):
            if base.main_memory_requests:
                extra.append((run.main_memory_requests - base.main_memory_requests)
                             / base.main_memory_requests)
        return sum(extra) / len(extra)

    assert overhead("hermes") < 0.6
    assert overhead("hermes") < overhead("pythia") + 0.05


def test_hermes_reduces_offchip_stall_cycles(results):
    hermes_stalls = sum(r.core.stall_cycles_offchip for r in results["pythia+hermes"])
    pythia_stalls = sum(r.core.stall_cycles_offchip for r in results["pythia"])
    assert hermes_stalls < pythia_stalls


def test_correct_predictions_translate_into_consumed_hermes_requests(results):
    for run in results["pythia+hermes"]:
        issued = run.hermes["hermes_requests_issued"]
        useful = run.hermes["hermes_requests_useful"]
        assert issued >= useful
        if run.core.offchip_loads:
            assert useful > 0


def test_streaming_workload_is_covered_by_pythia():
    trace = make_trace("parsec.streamcluster", num_accesses=6000)
    noprefetch = simulate_trace(SystemConfig.no_prefetching(), trace)
    pythia = simulate_trace(SystemConfig.baseline("pythia"), trace)
    assert pythia.llc_mpki < 0.5 * noprefetch.llc_mpki


def test_popet_beats_hmp_accuracy_and_coverage_on_irregular_workload():
    trace = make_trace("spec06.mcf_chase", num_accesses=ACCESSES)
    popet = simulate_trace(SystemConfig.with_hermes("popet", prefetcher="pythia"), trace)
    hmp = simulate_trace(SystemConfig.with_hermes("hmp", prefetcher="pythia"), trace)
    assert popet.predictor_accuracy > hmp.predictor_accuracy
    assert popet.predictor_coverage > hmp.predictor_coverage


def test_ttp_keeps_high_coverage_on_irregular_workload():
    trace = make_trace("cvp.server_db", num_accesses=ACCESSES)
    popet = simulate_trace(SystemConfig.with_hermes("popet", prefetcher="pythia"), trace)
    ttp = simulate_trace(SystemConfig.with_hermes("ttp", prefetcher="pythia"), trace)
    assert ttp.predictor_coverage >= 0.8
    assert ttp.predictor_coverage >= popet.predictor_coverage - 0.15


def test_ttp_accuracy_collapses_under_an_effective_prefetcher():
    """TTP does not see prefetch fills, so covered loads become false positives."""
    trace = make_trace("spec06.libq_stream", num_accesses=ACCESSES)
    popet = simulate_trace(SystemConfig.with_hermes("popet", prefetcher="pythia"), trace)
    ttp = simulate_trace(SystemConfig.with_hermes("ttp", prefetcher="pythia"), trace)
    assert ttp.predictor_accuracy < 0.5
    assert ttp.predictor_accuracy <= popet.predictor_accuracy + 0.05


def test_pessimistic_hermes_not_faster_than_optimistic():
    trace = make_trace("parsec.canneal", num_accesses=ACCESSES)
    optimistic = simulate_trace(
        SystemConfig.with_hermes("popet", prefetcher="pythia", optimistic=True), trace)
    pessimistic = simulate_trace(
        SystemConfig.with_hermes("popet", prefetcher="pythia", optimistic=False), trace)
    assert optimistic.ipc >= pessimistic.ipc * 0.98


def test_multicore_hermes_improves_throughput():
    mixes = multicore_mixes(num_cores=4, num_mixes=1, num_accesses=3000, seed=7)
    mix = mixes[0]
    baseline = simulate_multicore(SystemConfig.no_prefetching(), mix)
    pythia = simulate_multicore(SystemConfig.baseline("pythia"), mix)
    hermes = simulate_multicore(SystemConfig.with_hermes("popet", prefetcher="pythia"),
                                mix)
    assert hermes.throughput > baseline.throughput
    assert hermes.throughput > pythia.throughput * 0.98
    assert len(hermes.per_core) == 4
    assert hermes.speedup_over(baseline) > 1.0


def test_multicore_result_aggregates_predictor_stats():
    mixes = multicore_mixes(num_cores=2, num_mixes=1, num_accesses=2000, seed=11)
    result = simulate_multicore(SystemConfig.with_hermes("popet", prefetcher="pythia"),
                                mixes[0])
    assert 0.0 <= result.predictor["accuracy"] <= 1.0
    assert result.predictor["true_positives"] >= 0
